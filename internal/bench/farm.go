package bench

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Farm is a work-stealing worker pool for sweep points. Every evaluation
// sweep in this repo — (message size x strategy x core count x seed) grids,
// chaos variant triples, multi-seed fuzzing — is embarrassingly parallel:
// each point is an independent discrete-event simulation on its own
// engine, bit-deterministic in isolation. The Farm fans those points
// across host cores and lets the caller reassemble results in canonical
// point order, so artifacts stay byte-identical regardless of worker
// count or completion order.
//
// Scheduling model: Map distributes point i to worker deque i mod W.
// Workers pop their own deque LIFO and, when empty, steal the oldest task
// from another worker's deque (FIFO), so a straggler point never idles
// the rest of the pool. The submitting goroutine blocks until its whole
// group completes; results land in caller-owned slices indexed by point,
// which is what makes the merge deterministic.
//
// Contract: task functions must be leaves — they must not call Map on the
// same Farm (sweep coordinators run on ordinary goroutines; only leaf
// simulations run as tasks). A nil *Farm is valid and runs every Map
// serially in submission order with identical semantics, which is the
// degenerate -parallel case and what unit tests use for byte-for-byte
// reference runs.
type Farm struct {
	workers int

	mu      sync.Mutex
	cond    *sync.Cond
	deques  [][]*task
	pending int
	hwm     int
	closed  bool
	wg      sync.WaitGroup

	started   time.Time
	submitted atomic.Uint64
	executed  atomic.Uint64
	stolen    atomic.Uint64
	panics    atomic.Uint64
	busyNs    []atomic.Int64
}

// task is one queued point: fn computes it, grp collects completion, idx
// is the canonical point index within the group, home the deque it was
// dealt to (an executor with a different id counts as a steal).
type task struct {
	fn   func(i int) error
	grp  *group
	idx  int
	home int
}

// group tracks one Map call's outstanding points.
type group struct {
	n    int
	done int
	errs []error
	fin  chan struct{}
}

// NewFarm starts a pool of `parallel` workers (<=0 means GOMAXPROCS).
// Close it when the sweep is finished; an unclosed farm only costs idle
// goroutines.
func NewFarm(parallel int) *Farm {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	f := &Farm{
		workers: parallel,
		deques:  make([][]*task, parallel),
		busyNs:  make([]atomic.Int64, parallel),
		started: time.Now(),
	}
	f.cond = sync.NewCond(&f.mu)
	for w := 0; w < parallel; w++ {
		f.wg.Add(1)
		go f.worker(w)
	}
	return f
}

// Workers returns the pool size (0 for a nil farm).
func (f *Farm) Workers() int {
	if f == nil {
		return 0
	}
	return f.workers
}

// Map runs fn(0..n-1) across the pool and blocks until every point has
// finished. Errors (including recovered panics) are aggregated with
// errors.Join in point order; points after a failing one still run, so a
// partially-failed sweep keeps every completed result. A nil farm runs
// the points serially with the same semantics.
func (f *Farm) Map(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if f == nil {
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			errs[i] = runPoint(fn, i)
		}
		return errors.Join(errs...)
	}
	grp := &group{n: n, errs: make([]error, n), fin: make(chan struct{})}
	f.submitted.Add(uint64(n))
	f.mu.Lock()
	if f.closed {
		// Late submission after Close: degrade to serial rather than
		// deadlock on workers that already exited.
		f.mu.Unlock()
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			errs[i] = runPoint(fn, i)
		}
		return errors.Join(errs...)
	}
	for i := 0; i < n; i++ {
		home := i % f.workers
		f.deques[home] = append(f.deques[home], &task{fn: fn, grp: grp, idx: i, home: home})
	}
	f.pending += n
	if f.pending > f.hwm {
		f.hwm = f.pending
	}
	f.cond.Broadcast()
	f.mu.Unlock()
	<-grp.fin
	return errors.Join(grp.errs...)
}

// panicError marks an error that was recovered from a panicking point.
type panicError struct{ msg string }

func (e *panicError) Error() string { return e.msg }

// runPoint executes one point, converting a panic into an error so a bad
// point reports instead of killing the whole sweep.
func runPoint(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{msg: fmt.Sprintf("farm: point %d panicked: %v\n%s", i, r, debug.Stack())}
		}
	}()
	return fn(i)
}

// worker is one pool goroutine: drain own deque LIFO, steal FIFO, sleep.
func (f *Farm) worker(w int) {
	defer f.wg.Done()
	for {
		f.mu.Lock()
		t := f.takeLocked(w)
		for t == nil && !f.closed {
			f.cond.Wait()
			t = f.takeLocked(w)
		}
		if t == nil { // closed and drained
			f.mu.Unlock()
			return
		}
		f.pending--
		f.mu.Unlock()

		if t.home != w {
			f.stolen.Add(1)
		}
		start := time.Now()
		err := runPoint(t.fn, t.idx)
		f.busyNs[w].Add(int64(time.Since(start)))
		f.finish(t, err)
	}
}

// finish records a completed point and releases its group when it was the
// last one.
func (f *Farm) finish(t *task, err error) {
	f.executed.Add(1)
	if err != nil {
		var pe *panicError
		if errors.As(err, &pe) {
			f.panics.Add(1)
		}
	}
	f.mu.Lock()
	t.grp.errs[t.idx] = err
	t.grp.done++
	if t.grp.done == t.grp.n {
		close(t.grp.fin)
	}
	f.mu.Unlock()
}

// takeLocked pops a task: back of the worker's own deque first (LIFO —
// cache-warm freshest work), then the front of the next non-empty deque
// (FIFO — steal the oldest, least-contended task). Caller holds f.mu.
func (f *Farm) takeLocked(w int) *task {
	if d := f.deques[w]; len(d) > 0 {
		t := d[len(d)-1]
		f.deques[w] = d[:len(d)-1]
		return t
	}
	for off := 1; off < f.workers; off++ {
		v := (w + off) % f.workers
		if d := f.deques[v]; len(d) > 0 {
			t := d[0]
			f.deques[v] = d[1:]
			return t
		}
	}
	return nil
}

// Close stops the workers after the queues drain. Map must not be in
// flight; late Map calls fall back to serial execution.
func (f *Farm) Close() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
	f.wg.Wait()
}

// Stats snapshots the scheduler metrics (see doc/FARM.md). Host-time
// based, so informational only — never part of a gated artifact.
func (f *Farm) Stats() obs.FarmStats {
	if f == nil {
		return obs.FarmStats{}
	}
	f.mu.Lock()
	hwm := f.hwm
	f.mu.Unlock()
	s := obs.FarmStats{
		Workers:   f.workers,
		Submitted: f.submitted.Load(),
		Executed:  f.executed.Load(),
		Steals:    f.stolen.Load(),
		Panics:    f.panics.Load(),
		QueueHWM:  hwm,
	}
	wall := time.Since(f.started)
	if wall > 0 {
		for w := 0; w < f.workers; w++ {
			s.UtilPct = append(s.UtilPct,
				100*float64(f.busyNs[w].Load())/float64(wall))
		}
	}
	return s
}

// Publish pushes the farm.* metrics into an obs registry.
func (f *Farm) Publish(r *obs.Registry) { obs.PublishFarm(r, f.Stats()) }

// PointSeed derives the seed for point index i of a sweep seeded with
// base. It is a splitmix64 step over (base, i), so every point gets an
// independent, well-mixed stream without any shared rand.Rand — the seed
// depends only on (base, i), never on scheduling or completion order.
func PointSeed(base int64, i int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
