package bench

import (
	"strings"
	"testing"

	"repro/internal/cycles"
)

// These tests assert the SHAPE of the paper's results — who wins, by
// roughly what factor, where the crossovers are — not absolute numbers
// (DESIGN.md §2). Windows are short to keep the suite fast; the cmd/
// binaries run the full-length versions.

func run(t *testing.T, sys string, dir Direction, cores, msg int, windowMs float64) Result {
	t.Helper()
	cfg := DefaultConfig(sys, dir, cores, msg)
	cfg.WindowMs = windowMs
	r, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s/%v/%dc/%d: %v", sys, dir, cores, msg, err)
	}
	return r
}

func TestFig3ShapeSingleCoreRx(t *testing.T) {
	no := run(t, SysNoIOMMU, RX, 1, 16384, 6)
	cp := run(t, SysCopy, RX, 1, 16384, 6)
	idm := run(t, SysIdentityDefer, RX, 1, 16384, 6)
	idp := run(t, SysIdentityStrict, RX, 1, 16384, 6)

	// Paper: copy obtains 0.76x of no iommu.
	if rel := cp.Gbps / no.Gbps; rel < 0.65 || rel > 0.95 {
		t.Errorf("copy/noiommu = %.2f, want ~0.76", rel)
	}
	// Paper: copy is the best performer after no iommu, outperforming
	// identity- despite stronger protection.
	if cp.Gbps < idm.Gbps {
		t.Errorf("copy (%.1f) should beat identity- (%.1f)", cp.Gbps, idm.Gbps)
	}
	// Paper: copy obtains 2x the throughput of identity+.
	if ratio := cp.Gbps / idp.Gbps; ratio < 1.5 || ratio > 2.8 {
		t.Errorf("copy/identity+ = %.2f, want ~2", ratio)
	}
	// Receiver-bound regime: everyone is CPU saturated.
	for _, r := range []Result{no, cp, idm, idp} {
		if r.CPUPct < 95 {
			t.Errorf("%s CPU = %.0f%%, want saturation", r.Config.System, r.CPUPct)
		}
	}
}

func TestFig3SmallMessagesSenderLimited(t *testing.T) {
	// Paper: for small messages all systems obtain the same throughput
	// (the sender's syscall rate is the bottleneck) and overheads show
	// up as CPU instead.
	no := run(t, SysNoIOMMU, RX, 1, 256, 6)
	cp := run(t, SysCopy, RX, 1, 256, 6)
	if rel := cp.Gbps / no.Gbps; rel < 0.9 || rel > 1.1 {
		t.Errorf("small-message throughput should match: copy/noiommu = %.2f", rel)
	}
	if no.CPUPct > 95 {
		t.Errorf("no-iommu should not be CPU bound at 256B (%.0f%%)", no.CPUPct)
	}
	if cp.CPUPct <= no.CPUPct {
		t.Errorf("copy CPU (%.0f%%) should exceed no-iommu (%.0f%%)", cp.CPUPct, no.CPUPct)
	}
}

func TestFig4ShapeSingleCoreTx(t *testing.T) {
	no := run(t, SysNoIOMMU, TX, 1, 65536, 6)
	cp := run(t, SysCopy, TX, 1, 65536, 6)
	idp := run(t, SysIdentityStrict, TX, 1, 65536, 6)

	// Paper: with TSO, copy must copy 64 KiB buffers and becomes the
	// only design pegged at 100% CPU, 10-20% below the others.
	if cp.CPUPct < 99 {
		t.Errorf("copy TX CPU = %.0f%%, want 100%%", cp.CPUPct)
	}
	if idp.CPUPct > 98 {
		t.Errorf("identity+ TX should not be CPU bound at 64KB (%.0f%%)", idp.CPUPct)
	}
	rel := cp.Gbps / no.Gbps
	if rel < 0.7 || rel > 0.95 {
		t.Errorf("copy/noiommu TX = %.2f, want 0.8-0.9", rel)
	}
	if cp.Gbps >= idp.Gbps {
		t.Errorf("at 64KB TX cache pollution should tip the scale to identity+ (copy %.1f vs %.1f)", cp.Gbps, idp.Gbps)
	}
}

func TestFig5BreakdownMicrocosts(t *testing.T) {
	cp := run(t, SysCopy, RX, 1, 65536, 6)
	idp := run(t, SysIdentityStrict, RX, 1, 65536, 6)
	idm := run(t, SysIdentityDefer, RX, 1, 65536, 6)

	// Paper Fig 5a: copy spends ~0.11us on memcpy and ~0.02us on shadow
	// management per 1500B packet.
	if v := cp.PerOp[cycles.TagMemcpy]; v < 0.08 || v > 0.18 {
		t.Errorf("copy memcpy = %.3fus, want ~0.11", v)
	}
	if v := cp.PerOp[cycles.TagCopyMgmt]; v < 0.01 || v > 0.06 {
		t.Errorf("copy mgmt = %.3fus, want ~0.02", v)
	}
	// Copy never invalidates.
	if v := cp.PerOp[cycles.TagInvalidate]; v != 0 {
		t.Errorf("copy invalidation = %.3fus, want 0", v)
	}
	// Paper: identity+ spends ~0.61us invalidating; identity- ~none.
	if v := idp.PerOp[cycles.TagInvalidate]; v < 0.5 || v > 0.85 {
		t.Errorf("identity+ invalidation = %.3fus, want ~0.61", v)
	}
	if v := idm.PerOp[cycles.TagInvalidate]; v > 0.05 {
		t.Errorf("identity- invalidation = %.3fus, want ~0", v)
	}
	// Paper: page-table management costs both identities ~0.17us.
	for _, r := range []Result{idp, idm} {
		if v := r.PerOp[cycles.TagPTMgmt]; v < 0.12 || v > 0.25 {
			t.Errorf("%s pt mgmt = %.3fus, want ~0.17", r.Config.System, v)
		}
	}
	// Copy's memcpy is ~5.5x cheaper than identity+'s invalidation.
	ratio := idp.PerOp[cycles.TagInvalidate] / cp.PerOp[cycles.TagMemcpy]
	if ratio < 3.5 || ratio > 8 {
		t.Errorf("invalidation/memcpy = %.1f, want ~5.5", ratio)
	}
}

func TestFig6ShapeMultiCoreRx(t *testing.T) {
	no := run(t, SysNoIOMMU, RX, 16, 16384, 6)
	cp := run(t, SysCopy, RX, 16, 16384, 6)
	idm := run(t, SysIdentityDefer, RX, 16, 16384, 6)
	idp := run(t, SysIdentityStrict, RX, 16, 16384, 6)

	// Paper: identity+ obtains ~5x worse throughput than the others,
	// which are comparable among themselves (wire rate).
	for _, r := range []Result{no, cp, idm} {
		if r.Gbps < 34 {
			t.Errorf("%s 16-core RX = %.1f Gb/s, want ~wire rate", r.Config.System, r.Gbps)
		}
	}
	if ratio := cp.Gbps / idp.Gbps; ratio < 3.5 {
		t.Errorf("copy/identity+ 16-core = %.1fx, want ~5x", ratio)
	}
	// identity+ is the only design at 100% CPU.
	if idp.CPUPct < 95 {
		t.Errorf("identity+ CPU = %.0f%%, want saturation", idp.CPUPct)
	}
	// Copy's CPU overhead vs no-iommu is bounded (paper: up to 60%).
	if cp.CPUPct > no.CPUPct*2.2 {
		t.Errorf("copy CPU %.0f%% vs noiommu %.0f%%: overhead too large", cp.CPUPct, no.CPUPct)
	}
}

func TestFig7ShapeMultiCoreTx(t *testing.T) {
	// Small messages: identity+ ~5x worse.
	noS := run(t, SysNoIOMMU, TX, 16, 1024, 5)
	idpS := run(t, SysIdentityStrict, TX, 16, 1024, 5)
	if ratio := noS.Gbps / idpS.Gbps; ratio < 3 {
		t.Errorf("small-message TX collapse = %.1fx, want >=3x", ratio)
	}
	// Large messages: the gap closes (TSO lowers the packet rate).
	noL := run(t, SysNoIOMMU, TX, 16, 65536, 5)
	idpL := run(t, SysIdentityStrict, TX, 16, 65536, 5)
	if rel := idpL.Gbps / noL.Gbps; rel < 0.8 {
		t.Errorf("identity+ should close the TX gap at 64KB: %.2f", rel)
	}
}

func TestFig8SpinlockDominatesStrictMulticore(t *testing.T) {
	idp := run(t, SysIdentityStrict, RX, 16, 65536, 6)
	cp := run(t, SysCopy, RX, 16, 65536, 6)
	// Paper Fig 8a: identity+ suffers tens of microseconds of IOTLB-lock
	// spinning per packet; copy has (almost) none.
	if v := idp.PerOp[cycles.TagSpinlock]; v < 3 {
		t.Errorf("identity+ 16-core spinlock = %.1fus/pkt, want >> 1us", v)
	}
	if v := cp.PerOp[cycles.TagSpinlock]; v > 0.5 {
		t.Errorf("copy 16-core spinlock = %.2fus/pkt, want ~0", v)
	}
}

func TestFig9LatencyShape(t *testing.T) {
	res := map[string]map[int]Result{}
	for _, sys := range FigureSystems {
		res[sys] = map[int]Result{}
		for _, sz := range []int{64, 65536} {
			res[sys][sz] = run(t, sys, RR, 1, sz, 8)
		}
	}
	base := res[SysNoIOMMU]
	// Paper: all designs obtain comparable latency to no iommu.
	for _, sys := range FigureSystems {
		for _, sz := range []int{64, 65536} {
			rel := res[sys][sz].LatencyUs / base[sz].LatencyUs
			if rel > 2.0 {
				t.Errorf("%s latency at %d = %.1fx no-iommu, want comparable", sys, sz, rel)
			}
		}
	}
	// Paper: 1024x larger messages increase latency only ~4x.
	ratio := base[65536].LatencyUs / base[64].LatencyUs
	if ratio < 2.5 || ratio > 12 {
		t.Errorf("latency growth 64B->64KB = %.1fx, want moderate (~4x)", ratio)
	}
	// Overheads show up in CPU: identity+ uses the most.
	if res[SysIdentityStrict][65536].CPUPct <= res[SysNoIOMMU][65536].CPUPct {
		t.Error("identity+ RR should cost more CPU than no-iommu")
	}
}

func TestFig11MemcachedShape(t *testing.T) {
	results := map[string]KVResult{}
	for _, sys := range FigureSystems {
		r, err := RunMemcached(sys, 16, 5)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if r.Errors != 0 {
			t.Errorf("%s: %d protocol errors", sys, r.Errors)
		}
		results[sys] = r
	}
	no := results[SysNoIOMMU].TransactionsPS
	// Paper: copy provides full protection at essentially the same
	// throughput as no iommu (<2% overhead; we allow 10%).
	if rel := results[SysCopy].TransactionsPS / no; rel < 0.9 {
		t.Errorf("copy memcached = %.2fx no-iommu, want ~1", rel)
	}
	// Paper: the good designs obtain 6.6x the throughput of identity+.
	if ratio := no / results[SysIdentityStrict].TransactionsPS; ratio < 4 {
		t.Errorf("noiommu/identity+ memcached = %.1fx, want ~6.6x", ratio)
	}
}

func TestMemoryConsumptionModest(t *testing.T) {
	// Paper §6: < 256 MB of shadow buffers in practice (vs 2.1 GB worst
	// case); RX shadow buffers track in-flight DMAs.
	for _, dir := range []Direction{RX, TX} {
		r := run(t, SysCopy, dir, 16, 65536, 6)
		if r.PoolBytes == 0 {
			t.Errorf("%v: pool empty", dir)
		}
		if r.PoolBytes > 256<<20 {
			t.Errorf("%v: pool = %d MB, want < 256 MB", dir, r.PoolBytes>>20)
		}
	}
}

func TestFig1LinuxBaselines(t *testing.T) {
	// Figure 1 / Table 1 orderings for the stock-Linux baselines.
	strict := run(t, SysLinuxStrict, RX, 16, 16384, 5)
	deferred := run(t, SysLinuxDefer, RX, 16, 16384, 5)
	idm := run(t, SysIdentityDefer, RX, 16, 16384, 5)
	// Linux strict collapses like identity+ (worse, even: IOVA lock too).
	if strict.Gbps > 12 {
		t.Errorf("linux strict 16-core = %.1f Gb/s, should collapse", strict.Gbps)
	}
	// Linux deferred beats strict but trails the scalable identity-.
	if deferred.Gbps <= strict.Gbps {
		t.Errorf("deferred (%.1f) should beat strict (%.1f)", deferred.Gbps, strict.Gbps)
	}
	if deferred.Gbps >= idm.Gbps {
		t.Errorf("identity- (%.1f) should beat linux deferred (%.1f) at 16 cores", idm.Gbps, deferred.Gbps)
	}
}

func TestStorageStudyShape(t *testing.T) {
	// Device-bound regime: throughput equal across systems; protection
	// cost shows as CPU. At 4 KiB copying beats strict invalidation per
	// op; at 64 KiB the full copy is copy's worst point; at 256 KiB the
	// §5.5 hybrid path engages and brings copy back to zero-copy CPU.
	get := func(sys string, sz int) StorageResult {
		r, err := RunStorage(sys, 4, sz, 70, 6)
		if err != nil {
			t.Fatalf("%s/%d: %v", sys, sz, err)
		}
		if r.Errors != 0 {
			t.Fatalf("%s/%d: %d I/O errors", sys, sz, r.Errors)
		}
		return r
	}
	no4 := get(SysNoIOMMU, 4096)
	cp4 := get(SysCopy, 4096)
	idp4 := get(SysIdentityStrict, 4096)
	if rel := cp4.IOPS / no4.IOPS; rel < 0.95 || rel > 1.05 {
		t.Errorf("4K IOPS should be device-bound for all systems: copy/noiommu = %.2f", rel)
	}
	if cp4.CPUPct >= idp4.CPUPct {
		t.Errorf("at 4K, copy CPU (%.1f%%) should undercut identity+ (%.1f%%)", cp4.CPUPct, idp4.CPUPct)
	}
	cp64 := get(SysCopy, 65536)
	cp256 := get(SysCopy, 262144)
	idp256 := get(SysIdentityStrict, 262144)
	if cp256.HybridMaps == 0 {
		t.Error("256K I/O must engage the hybrid path")
	}
	if cp64.HybridMaps != 0 {
		t.Error("64K I/O fits the largest shadow class; no hybrid expected")
	}
	if cp256.CPUPct > idp256.CPUPct*2 {
		t.Errorf("hybrid should keep copy CPU near zero-copy levels: %.1f%% vs %.1f%%",
			cp256.CPUPct, idp256.CPUPct)
	}
	if cp256.CPUPct > cp64.CPUPct {
		t.Errorf("per §5.5, hybrid at 256K (%.1f%%) should cost less CPU than full copies at 64K (%.1f%%)",
			cp256.CPUPct, cp64.CPUPct)
	}
}

func TestExtendedSystemsRun(t *testing.T) {
	for _, sys := range []string{SysSWIOTLB, SysSelfInval} {
		r := run(t, sys, RX, 1, 16384, 4)
		if r.Gbps < 5 {
			t.Errorf("%s RX = %.1f Gb/s, implausibly low", sys, r.Gbps)
		}
	}
	// selfinval performance ~ identity- without flush costs: at least as
	// good as identity- and far better than identity+.
	si := run(t, SysSelfInval, RX, 1, 16384, 4)
	idm := run(t, SysIdentityDefer, RX, 1, 16384, 4)
	idp := run(t, SysIdentityStrict, RX, 1, 16384, 4)
	if si.Gbps < idm.Gbps*0.97 {
		t.Errorf("selfinval (%.1f) should be >= identity- (%.1f)", si.Gbps, idm.Gbps)
	}
	if si.Gbps < idp.Gbps*1.4 {
		t.Errorf("selfinval (%.1f) should easily beat identity+ (%.1f)", si.Gbps, idp.Gbps)
	}
}

func TestNUMAStickinessAblation(t *testing.T) {
	// The pool keeps shadow buffers NUMA-local and sticky (§5.3). Moving
	// the OS buffers to the far domain makes every copy a remote copy;
	// the memcpy component must grow by roughly the remote factor.
	local := run(t, SysCopy, RX, 1, 16384, 5)
	cfg := DefaultConfig(SysCopy, RX, 1, 16384)
	cfg.WindowMs = 5
	cfg.RemoteBufs = true
	remote, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lm, rm := local.PerOp[cycles.TagMemcpy], remote.PerOp[cycles.TagMemcpy]
	if rm < lm*1.2 {
		t.Errorf("remote memcpy %.3fus should exceed local %.3fus by the NUMA factor", rm, lm)
	}
	if remote.Gbps > local.Gbps {
		t.Errorf("remote buffers should not be faster (%.1f vs %.1f)", remote.Gbps, local.Gbps)
	}
}

func TestIOTLBBehaviourPerStrategy(t *testing.T) {
	cp := run(t, SysCopy, RX, 1, 16384, 5)
	idp := run(t, SysIdentityStrict, RX, 1, 16384, 5)
	if cp.Invalidations != 0 {
		t.Errorf("copy submitted %d invalidations", cp.Invalidations)
	}
	if idp.Invalidations == 0 {
		t.Error("identity+ should invalidate per unmap")
	}
	if cp.IOTLBHitRate < 0 || cp.IOTLBHitRate > 1 {
		t.Errorf("hit rate out of range: %f", cp.IOTLBHitRate)
	}
	// Strict invalidation destroys locality: copy's permanently mapped
	// buffers must enjoy a better IOTLB hit rate.
	if cp.IOTLBHitRate <= idp.IOTLBHitRate {
		t.Errorf("copy hit rate %.2f should exceed identity+ %.2f", cp.IOTLBHitRate, idp.IOTLBHitRate)
	}
}

func TestMixedIOInterference(t *testing.T) {
	// The invalidation queue is per-IOMMU, shared by all devices: a busy
	// SSD must degrade identity+'s network throughput (cross-device
	// interference) while copy — which never invalidates — is immune.
	idpAlone, err := RunMixed(SysIdentityStrict, 4, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	idpBoth, err := RunMixed(SysIdentityStrict, 4, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if idpBoth.NetGbps > idpAlone.NetGbps*0.85 {
		t.Errorf("SSD should degrade identity+ networking: %.1f -> %.1f Gb/s",
			idpAlone.NetGbps, idpBoth.NetGbps)
	}
	if idpBoth.InvWaits == 0 {
		t.Error("cross-device invalidation-queue contention should be visible")
	}
	cpAlone, err := RunMixed(SysCopy, 4, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	cpBoth, err := RunMixed(SysCopy, 4, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cpBoth.NetGbps < cpAlone.NetGbps*0.97 {
		t.Errorf("copy must be immune to SSD interference: %.1f -> %.1f Gb/s",
			cpAlone.NetGbps, cpBoth.NetGbps)
	}
	if cpBoth.Errors != 0 || idpBoth.Errors != 0 {
		t.Error("mixed runs had I/O errors")
	}
}

func TestSensitivityBaselineAndRobustClaims(t *testing.T) {
	tab, _, err := Sensitivity(Options{WindowMs: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline (unperturbed) row: every claim must hold.
	base := tab.Rows[0]
	for i, cell := range base[2:] {
		if cell != "holds" {
			t.Errorf("baseline claim %q does not hold", PaperClaims[i].Name)
		}
	}
	// The headline claims (everything except the narrow 10%% edge over
	// identity-) must be robust to every +/-25%% perturbation.
	for _, row := range tab.Rows[1:] {
		for i, cell := range row[2:] {
			if i == 0 {
				continue // "copy beats identity-" is a ~5-10% margin; may flip
			}
			if cell != "holds" {
				t.Errorf("claim %q flips under %s x%s", PaperClaims[i].Name, row[0], row[1])
			}
		}
	}
}

func TestAPIMicroShape(t *testing.T) {
	rx := MicroPatterns[0] // rx 1500B
	cp, err := RunMicro(SysCopy, rx, 2000)
	if err != nil {
		t.Fatal(err)
	}
	idp, err := RunMicro(SysIdentityStrict, rx, 2000)
	if err != nil {
		t.Fatal(err)
	}
	no, err := RunMicro(SysNoIOMMU, rx, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// The purest form of the paper's insight: for MTU-sized buffers a
	// copy-based map+unmap pair is several times cheaper than a strict
	// zero-copy pair.
	if idp.PerPairUs < cp.PerPairUs*2.5 {
		t.Errorf("identity+ pair %.3fus should be >=2.5x copy pair %.3fus", idp.PerPairUs, cp.PerPairUs)
	}
	if no.PerPairUs > 0.01 {
		t.Errorf("no-iommu pair should be ~free, got %.3fus", no.PerPairUs)
	}
	// The crossover: at 64 KiB the copy pair is the expensive one.
	tx := MicroPatterns[1]
	cpTx, err := RunMicro(SysCopy, tx, 200)
	if err != nil {
		t.Fatal(err)
	}
	idpTx, err := RunMicro(SysIdentityStrict, tx, 200)
	if err != nil {
		t.Fatal(err)
	}
	if cpTx.PerPairUs < idpTx.PerPairUs {
		t.Errorf("at 64KB the copy pair (%.2fus) should exceed identity+ (%.2fus)",
			cpTx.PerPairUs, idpTx.PerPairUs)
	}
}

func TestRunRejectsUnknownSystem(t *testing.T) {
	if _, err := Run(Config{System: "nonesuch", Direction: RX, Cores: 1, MsgSize: 100}); err == nil {
		t.Error("unknown system should fail")
	}
}

func TestTablesRender(t *testing.T) {
	opt := Options{WindowMs: 2, Sizes: []int{1024}, Systems: []string{SysNoIOMMU, SysCopy}}
	tab, err := Fig3(opt)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if len(s) == 0 || tab.Columns[0] != "msg" {
		t.Error("table rendering broken")
	}
	csvOut := tab.CSV()
	if !strings.HasPrefix(csvOut, "msg,") {
		t.Errorf("csv header wrong: %q", csvOut[:20])
	}
	if strings.Count(csvOut, "\n") != len(tab.Rows)+1 {
		t.Error("csv row count wrong")
	}
	jsonOut, err := tab.JSON()
	if err != nil || !strings.Contains(jsonOut, `"columns"`) {
		t.Errorf("json rendering broken: %v", err)
	}
	if _, err := tab.Render("nonesuch"); err == nil {
		t.Error("unknown format should fail")
	}
	for _, f := range []string{"", "text", "csv", "json"} {
		if _, err := tab.Render(f); err != nil {
			t.Errorf("format %q: %v", f, err)
		}
	}
}
