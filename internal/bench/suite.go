package bench

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cycles"
	"repro/internal/obs"
	"repro/internal/report"
)

// Section is one independently-runnable family of the evaluation (one
// figure, table or extension study).
type Section struct {
	Name string
	Run  func(Options) (*Table, error)
}

// Suite returns the full evaluation in report order — every figure of the
// paper plus this reproduction's extension studies. Sections are
// independent simulations, so RunSuite executes them concurrently.
func Suite(includeSensitivity bool) []Section {
	s := []Section{
		{"fig1", Fig1},
		{"fig1ext", Fig1Extended},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig5a", func(o Options) (*Table, error) { t, _, err := Breakdown(RX, 1, o); return t, err }},
		{"fig5b", func(o Options) (*Table, error) { t, _, err := Breakdown(TX, 1, o); return t, err }},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8a", func(o Options) (*Table, error) { t, _, err := Breakdown(RX, 16, o); return t, err }},
		{"fig9", func(o Options) (*Table, error) { t, _, err := Fig9(o); return t, err }},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"memory", MemoryConsumption},
		{"apimicro", func(o Options) (*Table, error) {
			// The microbenchmark covers the related-work systems too and
			// is window-independent (fixed pair count).
			return APIMicro(Options{Systems: ExtendedSystems, Costs: o.Costs, Farm: o.Farm})
		}},
		{"storage", StorageStudy},
		{"mixed", MixedStudy},
	}
	if includeSensitivity {
		s = append(s, Section{"sensitivity", func(o Options) (*Table, error) {
			// Half the window: 11 cost models x 8 machines is the slow part.
			t, violations, err := Sensitivity(Options{WindowMs: o.window() / 2, Costs: o.Costs, Farm: o.Farm})
			if err != nil {
				return nil, err
			}
			t.Note = fmt.Sprintf("claim flips: %d", violations)
			return t, nil
		}})
	}
	return s
}

// RunSuite executes every section's individual data points across a
// bench.Farm of `parallelism` workers (<=0 means GOMAXPROCS) and returns
// the tables in section order. Each section runs on a lightweight
// coordinator goroutine that submits its points (not whole sections) to
// the shared farm, so one slow section (sensitivity: 11 cost models x 8
// machines) no longer pins a worker while the others idle. When
// opt.Farm is already set the caller's pool is used and left open;
// otherwise a fresh pool is created for the call and closed afterwards.
//
// Section failures are aggregated with errors.Join and the completed
// tables are still returned (nil slots mark the failed sections), so
// callers can write a partial diagnostic artifact alongside the error.
func RunSuite(sections []Section, opt Options, parallelism int) ([]*Table, error) {
	if opt.Farm == nil {
		farm := NewFarm(parallelism)
		defer farm.Close()
		opt.Farm = farm
	}
	tables := make([]*Table, len(sections))
	errs := make([]error, len(sections))
	var wg sync.WaitGroup
	for i, sec := range sections {
		i, sec := i, sec
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			t, err := sec.Run(opt)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", sec.Name, err)
				return
			}
			if t.Name == "" {
				t.Name = sec.Name
			}
			t.WallMs = float64(time.Since(start).Microseconds()) / 1000
			tables[i] = t
		}()
	}
	wg.Wait()
	return tables, errors.Join(errs...)
}

// FarmTable packages a farm's scheduling counters as a one-point table
// whose metrics all carry the "farm." prefix. Those metrics are host-time
// observations, so report.Diff exempts them from the regression gate
// (like wall_* / host_*): they ride along in the artifact for
// observability without ever being able to fail a comparison.
func FarmTable(fs obs.FarmStats) *Table {
	var util float64
	for _, u := range fs.UtilPct {
		util += u
	}
	if len(fs.UtilPct) > 0 {
		util /= float64(len(fs.UtilPct))
	}
	t := &Table{
		Name:    "farm",
		Title:   "Farm scheduling stats (host-time, diff-exempt)",
		Columns: []string{"workers", "points", "steals", "queue hwm", "mean util %"},
	}
	t.Point("farm", "stats", map[string]float64{
		"farm.workers":       float64(fs.Workers),
		"farm.submitted":     float64(fs.Submitted),
		"farm.executed":      float64(fs.Executed),
		"farm.steals":        float64(fs.Steals),
		"farm.panics":        float64(fs.Panics),
		"farm.queue_hwm":     float64(fs.QueueHWM),
		"farm.mean_util_pct": util,
	})
	t.AddRow(fmt.Sprintf("%d", fs.Workers), fmt.Sprintf("%d", fs.Executed),
		fmt.Sprintf("%d", fs.Steals), fmt.Sprintf("%d", fs.QueueHWM),
		fmt.Sprintf("%.0f", util))
	return t
}

// Artifact bundles tables into a machine-readable artifact (see
// internal/report). A nil costs means the default calibration.
func Artifact(tool string, windowMs float64, costs *cycles.Costs, tables []*Table) *report.Artifact {
	a := report.New(tool, windowMs, costs)
	for _, t := range tables {
		if t != nil {
			a.Add(t.Experiment())
		}
	}
	return a
}

// WriteArtifact stamps and writes tables as an artifact file — the shared
// tail of every cmd/* tool's -json flag.
func WriteArtifact(path, tool string, windowMs float64, costs *cycles.Costs, tables ...*Table) error {
	a := Artifact(tool, windowMs, costs, tables)
	a.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	return a.WriteFile(path)
}
