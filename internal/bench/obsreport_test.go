package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// profileAt runs one profiled 16-core RX point and returns its profile.
func profileAt(t *testing.T, sys string, msgSize int) *obs.Profile {
	t.Helper()
	cfg := DefaultConfig(sys, RX, 16, msgSize)
	cfg.WindowMs = 2
	cfg.Obs = obs.New(false)
	r, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s/%d: %v", sys, msgSize, err)
	}
	if r.Profile == nil {
		t.Fatalf("%s/%d: no profile despite Config.Obs", sys, msgSize)
	}
	return r.Profile
}

// TestCycleCoverage is the tentpole acceptance bar: on the Figure 6 and
// Figure 8a workload points, named spans must attribute at least 95% of
// every system's busy cycles.
func TestCycleCoverage(t *testing.T) {
	for _, msg := range []int{1500, 65536} {
		for _, sys := range AllSystems {
			msg, sys := msg, sys
			t.Run(fmt.Sprintf("%s/%d", sys, msg), func(t *testing.T) {
				t.Parallel()
				p := profileAt(t, sys, msg)
				if p.TotalBusy == 0 {
					t.Fatal("no busy cycles recorded")
				}
				if cov := p.Coverage(); cov < 0.95 {
					t.Errorf("span coverage %.1f%% < 95%% (attributed %d of %d busy cycles)",
						100*cov, p.Attributed(), p.TotalBusy)
				}
			})
		}
	}
}

// TestCycleBreakdownOrdering checks the profile agrees with the paper's
// breakdown story at the 16-core MTU point: strict and identity+ pay for
// IOTLB invalidation and the lock spinning it causes, while the copy
// strategy pays for copies and shadow-pool management instead.
func TestCycleBreakdownOrdering(t *testing.T) {
	for _, sys := range []string{SysLinuxStrict, SysIdentityStrict} {
		sys := sys
		t.Run(sys, func(t *testing.T) {
			t.Parallel()
			p := profileAt(t, sys, 1500)
			inval := p.GroupCycles("invalidate") + p.GroupCycles("lock/spin")
			for _, other := range []string{"copy", "iova", "pt-mgmt"} {
				if oc := p.GroupCycles(other) + p.GroupCycles(other+"-mgmt"); inval <= oc {
					t.Errorf("invalidate+lock/spin (%d) does not dominate %s (%d)", inval, other, oc)
				}
			}
		})
	}
	t.Run(SysCopy, func(t *testing.T) {
		t.Parallel()
		p := profileAt(t, SysCopy, 1500)
		cp := p.GroupCycles("copy") + p.GroupCycles("copy-mgmt")
		for _, other := range []string{"invalidate", "lock/spin", "iova", "pt-mgmt"} {
			if oc := p.GroupCycles(other); cp <= oc {
				t.Errorf("copy+copy-mgmt (%d) does not dominate %s (%d)", cp, other, oc)
			}
		}
		if inv := p.GroupCycles("invalidate"); inv != 0 {
			t.Errorf("copy strategy attributed %d invalidation cycles; shadowing never invalidates", inv)
		}
	})
}

// TestCycleReportTables exercises the -cyclereport table builder end to
// end on a reduced system set.
func TestCycleReportTables(t *testing.T) {
	opt := Options{WindowMs: 1, Systems: []string{SysLinuxStrict, SysCopy}}
	tables, err := CycleReport(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("want 2 cycle tables, got %d", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) < 3 || len(tbl.Series) != 2 {
			t.Errorf("%s: degenerate table (%d rows, %d series)", tbl.Name, len(tbl.Rows), len(tbl.Series))
		}
		for _, s := range tbl.Series {
			m := s.Points[0].Metrics
			if m["coverage"] < 0.95 {
				t.Errorf("%s/%s: coverage %.3f < 0.95", tbl.Name, s.System, m["coverage"])
			}
		}
	}
}

// TestWriteTraceChromeSchema validates the -tracefile output end to end:
// the produced file must be Chrome trace-event JSON that Perfetto accepts —
// an object with a traceEvents array whose entries carry the phase-specific
// required fields.
func TestWriteTraceChromeSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	cfg := DefaultConfig(SysLinuxStrict, RX, 2, 1500)
	cfg.WindowMs = 1
	if _, err := WriteTrace(cfg, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", f.DisplayTimeUnit)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	var slices, iommuEvents, threadNames int
	for i, ev := range f.TraceEvents {
		name, _ := ev["name"].(string)
		ph, _ := ev["ph"].(string)
		if name == "" || ph == "" {
			t.Fatalf("event %d missing name/ph: %v", i, ev)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event %d missing numeric ts: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d missing numeric pid: %v", i, ev)
		}
		switch ph {
		case "X":
			slices++
			if dur, ok := ev["dur"].(float64); ok && dur < 0 {
				t.Fatalf("event %d negative dur: %v", i, ev)
			}
		case "i":
			if s, _ := ev["s"].(string); s != "t" && s != "p" {
				t.Fatalf("event %d instant without valid scope: %v", i, ev)
			}
			if c, _ := ev["cat"].(string); c == "iommu" {
				iommuEvents++
			}
		case "M":
			if name == "thread_name" {
				threadNames++
			}
		default:
			t.Fatalf("event %d unexpected phase %q", i, ph)
		}
	}
	if slices == 0 {
		t.Error("no span slices recorded")
	}
	if threadNames == 0 {
		t.Error("no thread_name metadata (core tracks unnamed)")
	}
	if iommuEvents == 0 {
		t.Error("no IOMMU ring events exported (strict RX must invalidate)")
	}
}

// TestProfileAbsentByDefault: without Config.Obs the runner must not
// attach a profile (and, by the baseline gate, must not change behavior).
func TestProfileAbsentByDefault(t *testing.T) {
	cfg := DefaultConfig(SysNoIOMMU, RX, 1, 1500)
	cfg.WindowMs = 1
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Profile != nil {
		t.Error("Profile set without an observer")
	}
}
