package bench

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestFarmTable checks the diff-exempt farm.* observability table that
// cmd/reproduce appends to its artifacts: every metric must carry the
// "farm." prefix (the report diff's exemption key) and reflect the
// stats snapshot.
func TestFarmTable(t *testing.T) {
	fs := obs.FarmStats{Workers: 4, Submitted: 30, Executed: 30, Steals: 3,
		QueueHWM: 12, UtilPct: []float64{100, 80, 60, 40}}
	tbl := FarmTable(fs)
	exp := tbl.Experiment()
	if len(exp.Series) != 1 || len(exp.Series[0].Points) != 1 {
		t.Fatalf("want 1 series with 1 point, got %+v", exp.Series)
	}
	m := exp.Series[0].Points[0].Metrics
	for name := range m {
		if !strings.HasPrefix(name, "farm.") {
			t.Errorf("metric %q lacks the diff-exempt farm. prefix", name)
		}
	}
	if m["farm.workers"] != 4 || m["farm.executed"] != 30 || m["farm.steals"] != 3 {
		t.Errorf("counter metrics wrong: %v", m)
	}
	if got := m["farm.mean_util_pct"]; got != 70 {
		t.Errorf("mean util = %v, want 70", got)
	}
	if tbl.String() == "" {
		t.Error("table renders empty")
	}
}

// fig1extArtifact runs the full Fig1Extended sweep (six systems x
// {1,4,16,64,128} cores) through a farm of the given size and returns the
// artifact bytes with host-time fields zeroed.
func fig1extArtifact(t *testing.T, parallel int) []byte {
	t.Helper()
	farm := NewFarm(parallel)
	defer farm.Close()
	opt := Options{WindowMs: 0.25, Farm: farm}
	tables, err := RunSuite([]Section{{"fig1ext", Fig1Extended}}, opt, parallel)
	if err != nil {
		t.Fatal(err)
	}
	a := Artifact("scaletest", opt.WindowMs, nil, tables)
	for i := range a.Experiments {
		a.Experiments[i].WallMs = 0
	}
	a.CreatedAt = ""
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFig1ExtendedDeterminism is the scale-out payoff's contract: the
// 64/128-core sweep — the heaviest users of the sharded IOVA index, the
// Meta arenas and the baton dispatch — produces byte-identical artifacts
// at -parallel 1, 4 and GOMAXPROCS. Under `go test -race` this is also
// the farmed-parallel race check for those sharded structures: four real
// worker goroutines each drive full 128-core machines concurrently.
func TestFig1ExtendedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep comparison")
	}
	ref := fig1extArtifact(t, 1)
	for _, parallel := range []int{4, runtime.GOMAXPROCS(0)} {
		got := fig1extArtifact(t, parallel)
		if !bytes.Equal(ref, got) {
			t.Errorf("fig1ext artifact at parallel=%d differs from serial reference (%d vs %d bytes)",
				parallel, len(got), len(ref))
		}
	}
}
