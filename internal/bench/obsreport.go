package bench

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/obs"
)

// Cycle-attribution reporting (-cyclereport) and Chrome trace export
// (-tracefile): the bench-harness face of internal/obs. Each profiled run
// gets its own Observer (observers are per-engine state), and the results
// render as the same Table/Series schema every other experiment uses, so
// cycle reports flow into -json artifacts and benchdiff unchanged.

// cyclePoint is one profiled workload point of a cycle report.
type cyclePoint struct {
	system string
	run    func() (*obs.Profile, error)
}

// profileTable renders per-system profiles as a breakdown-category table:
// one row per category (percent of the workload procs' busy cycles), plus
// attribution coverage and the busy-cycle denominator. The structured
// series carries the same numbers for the artifact schema.
func profileTable(name, title string, systems []string, profs map[string]*obs.Profile) *Table {
	t := &Table{
		Name:    name,
		Title:   title,
		Note:    "percent of workload-proc busy cycles, by span category (internal/obs)",
		Columns: append([]string{"category"}, systems...),
	}
	// Union of categories, ordered by total cycles across systems.
	totals := make(map[string]uint64)
	for _, sys := range systems {
		if p := profs[sys]; p != nil {
			for _, g := range p.Groups() {
				totals[g.Group] += g.Cycles
			}
		}
	}
	groups := make([]string, 0, len(totals))
	for g := range totals {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		if totals[groups[i]] != totals[groups[j]] {
			return totals[groups[i]] > totals[groups[j]]
		}
		return groups[i] < groups[j]
	})
	pct := func(p *obs.Profile, cyc uint64) float64 {
		if p == nil || p.TotalBusy == 0 {
			return 0
		}
		return 100 * float64(cyc) / float64(p.TotalBusy)
	}
	for _, g := range groups {
		row := []string{g}
		for _, sys := range systems {
			row = append(row, f1(pct(profs[sys], profs[sys].GroupCycles(g))))
		}
		t.AddRow(row...)
	}
	cov := []string{"attributed %"}
	busy := []string{"busy Mcycles"}
	for _, sys := range systems {
		p := profs[sys]
		cov = append(cov, f1(100*p.Coverage()))
		busy = append(busy, f1(float64(p.TotalBusy)/1e6))
		metrics := map[string]float64{
			"coverage":     p.Coverage(),
			"busy_mcycles": float64(p.TotalBusy) / 1e6,
		}
		for _, g := range groups {
			metrics[g+"_pct"] = pct(p, p.GroupCycles(g))
		}
		t.Point(sys, "busy", metrics)
	}
	t.AddRow(cov...)
	t.AddRow(busy...)
	return t
}

// runCycleTable executes one profiled run per system (concurrently — each
// on its own machine and observer) and folds them into a profileTable.
func runCycleTable(name, title string, pts []cyclePoint) (*Table, error) {
	profs := make(map[string]*obs.Profile, len(pts))
	systems := make([]string, 0, len(pts))
	errs := make([]error, len(pts))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, pt := range pts {
		systems = append(systems, pt.system)
		i, pt := i, pt
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			p, err := pt.run()
			if err != nil {
				errs[i] = fmt.Errorf("%s/%s: %w", name, pt.system, err)
				return
			}
			mu.Lock()
			profs[pt.system] = p
			mu.Unlock()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return profileTable(name, title, systems, profs), nil
}

// streamCyclePoints builds the profiled-run closures for one STREAM point.
func streamCyclePoints(dir Direction, cores, msgSize int, opt Options) []cyclePoint {
	pts := make([]cyclePoint, 0, len(opt.systems()))
	for _, sys := range opt.systems() {
		sys := sys
		pts = append(pts, cyclePoint{system: sys, run: func() (*obs.Profile, error) {
			cfg := DefaultConfig(sys, dir, cores, msgSize)
			opt.applyTo(&cfg)
			cfg.Obs = obs.New(false)
			r, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			return r.Profile, nil
		}})
	}
	return pts
}

// CycleReport profiles the paper's two contended receive points — 16-core
// RX at MTU-sized (1500 B) messages (the Figure 6 collapse point) and at
// 64 KiB messages (the Figure 8a breakdown point) — and reports where each
// strategy's cycles go. This is the -cyclereport table: for strict and
// identity+ the invalidate and lock/spin categories dominate the DMA-side
// cost; for the copy strategy it is copy and copy-mgmt instead.
func CycleReport(opt Options) ([]*Table, error) {
	if len(opt.Systems) == 0 {
		opt.Systems = AllSystems
	}
	var out []*Table
	for _, pt := range []struct {
		name, title string
		msg         int
	}{
		{"cycles-mtu", "Cycle attribution: 16-core TCP RX, 1500B messages (Figure 6 point)", 1500},
		{"cycles-64k", "Cycle attribution: 16-core TCP RX, 64KB messages (Figure 8a point)", 65536},
	} {
		t, err := runCycleTable(pt.name, pt.title, streamCyclePoints(RX, 16, pt.msg, opt))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// CycleReportRR profiles the latency workload (single-core TCP_RR, 64 KiB
// messages — the Figure 10 point) for latbench's -cyclereport.
func CycleReportRR(opt Options) (*Table, error) {
	if len(opt.Systems) == 0 {
		opt.Systems = AllSystems
	}
	return runCycleTable("cycles-rr",
		"Cycle attribution: single-core TCP RR, 64KB messages (Figure 10 point)",
		streamCyclePoints(RR, 1, 65536, opt))
}

// CycleReportKV profiles the memcached workload (Figure 11) for kvbench's
// -cyclereport.
func CycleReportKV(cores int, opt Options) (*Table, error) {
	if len(opt.Systems) == 0 {
		opt.Systems = FigureSystems
	}
	pts := make([]cyclePoint, 0, len(opt.systems()))
	for _, sys := range opt.systems() {
		sys := sys
		pts = append(pts, cyclePoint{system: sys, run: func() (*obs.Profile, error) {
			_, p, err := runMemcached(sys, cores, opt.window(), obs.New(false))
			return p, err
		}})
	}
	return runCycleTable("cycles-kv",
		fmt.Sprintf("Cycle attribution: memcached, %d instances (Figure 11 workload)", cores), pts)
}

// CycleReportMicro profiles the DMA-API microbenchmark's MTU receive
// pattern for apibench's -cyclereport: with no datapath around the
// map/unmap pairs, the table is the paper's §4 cost argument in category
// form.
func CycleReportMicro(opt Options) (*Table, error) {
	if len(opt.Systems) == 0 {
		opt.Systems = AllSystems
	}
	pat := MicroPatterns[0] // "rx 1500B"
	pts := make([]cyclePoint, 0, len(opt.systems()))
	for _, sys := range opt.systems() {
		sys := sys
		pts = append(pts, cyclePoint{system: sys, run: func() (*obs.Profile, error) {
			_, p, err := runMicro(sys, pat, 2000, obs.New(false))
			return p, err
		}})
	}
	return runCycleTable("cycles-micro",
		"Cycle attribution: DMA API microbenchmark, "+pat.Name+" pattern", pts)
}

// TraceWindowMs bounds -tracefile runs: a couple of simulated milliseconds
// keeps the slice count well under the recorder cap while still showing
// thousands of packets.
const TraceWindowMs = 2

// WriteTrace runs one configuration with timeline recording enabled and
// writes the Chrome trace-event JSON (Perfetto-loadable) to path. The
// window is clamped to TraceWindowMs.
func WriteTrace(cfg Config, path string) (Result, error) {
	if cfg.WindowMs <= 0 || cfg.WindowMs > TraceWindowMs {
		cfg.WindowMs = TraceWindowMs
	}
	o := obs.New(true)
	cfg.Obs = o
	res, err := Run(cfg)
	if err != nil {
		return res, err
	}
	return res, o.WriteTraceFile(path)
}

// WriteTraceKV records the memcached workload's timeline.
func WriteTraceKV(system string, cores int, path string) (KVResult, error) {
	o := obs.New(true)
	r, _, err := runMemcached(system, cores, TraceWindowMs, o)
	if err != nil {
		return r, err
	}
	return r, o.WriteTraceFile(path)
}

// WriteTraceMicro records the DMA-API microbenchmark's timeline.
func WriteTraceMicro(system string, path string) (MicroResult, error) {
	o := obs.New(true)
	r, _, err := runMicro(system, MicroPatterns[0], 2000, o)
	if err != nil {
		return r, err
	}
	return r, o.WriteTraceFile(path)
}
