package bench

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

// smokeArtifact runs a smoke-sized sweep through a farm of the given size
// and returns the artifact bytes with host-time fields zeroed — the exact
// payload the benchdiff gate consumes.
func smokeArtifact(t *testing.T, parallel int) []byte {
	t.Helper()
	farm := NewFarm(parallel)
	defer farm.Close()
	opt := Options{WindowMs: 0.25, Sizes: []int{1024, 16384}, Systems: []string{SysNoIOMMU, SysCopy}, Farm: farm}
	sections := []Section{
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"apimicro", func(o Options) (*Table, error) {
			return APIMicro(Options{Systems: o.Systems, Farm: o.Farm})
		}},
	}
	tables, err := RunSuite(sections, opt, parallel)
	if err != nil {
		t.Fatal(err)
	}
	a := Artifact("farmtest", opt.WindowMs, nil, tables)
	for i := range a.Experiments {
		a.Experiments[i].WallMs = 0
	}
	a.CreatedAt = ""
	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFarmArtifactDeterminism is the tentpole's contract: the same sweep
// produces byte-identical artifacts at -parallel 1, 4 and GOMAXPROCS.
// Worker count and completion order may change; numbers may not.
func TestFarmArtifactDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep comparison")
	}
	ref := smokeArtifact(t, 1)
	for _, parallel := range []int{4, runtime.GOMAXPROCS(0)} {
		got := smokeArtifact(t, parallel)
		if !bytes.Equal(ref, got) {
			t.Errorf("artifact at parallel=%d differs from serial reference (%d vs %d bytes)",
				parallel, len(got), len(ref))
		}
	}
}

// TestFarmMapOrderAndCoverage checks every point runs exactly once and
// results land at their canonical index.
func TestFarmMapOrderAndCoverage(t *testing.T) {
	farm := NewFarm(4)
	defer farm.Close()
	const n = 100
	out := make([]int, n)
	var ran atomic.Uint64
	err := farm.Map(n, func(i int) error {
		ran.Add(1)
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d points, want %d", ran.Load(), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("point %d landed wrong: %d", i, v)
		}
	}
}

// TestFarmWorkerPanicDrains proves a panicking point cannot wedge the
// pool: Map returns (no deadlock), the panic surfaces as that point's
// error, every other point still runs, and the farm stays usable.
func TestFarmWorkerPanicDrains(t *testing.T) {
	farm := NewFarm(2)
	defer farm.Close()
	const n = 8
	ran := make([]bool, n)
	var mu sync.Mutex
	err := farm.Map(n, func(i int) error {
		mu.Lock()
		ran[i] = true
		mu.Unlock()
		if i == 3 {
			panic("synthetic point failure")
		}
		if i == 5 {
			return errors.New("ordinary failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic must surface as an error")
	}
	if !strings.Contains(err.Error(), "point 3 panicked") ||
		!strings.Contains(err.Error(), "synthetic point failure") {
		t.Errorf("panic not attributed to its point: %v", err)
	}
	if !strings.Contains(err.Error(), "ordinary failure") {
		t.Errorf("plain error lost in aggregation: %v", err)
	}
	for i, r := range ran {
		if !r {
			t.Errorf("point %d never ran after a sibling panicked", i)
		}
	}
	if farm.Stats().Panics != 1 {
		t.Errorf("panics counter = %d, want 1", farm.Stats().Panics)
	}
	// The pool survives: a follow-up Map completes normally.
	if err := farm.Map(4, func(int) error { return nil }); err != nil {
		t.Fatalf("farm unusable after panic: %v", err)
	}
}

// TestFarmNilAndClosed covers the two serial-fallback paths: a nil farm
// and a closed one both run Map inline with identical semantics.
func TestFarmNilAndClosed(t *testing.T) {
	var nilFarm *Farm
	sum := 0
	if err := nilFarm.Map(5, func(i int) error { sum += i; return nil }); err != nil {
		t.Fatal(err)
	}
	if sum != 10 {
		t.Errorf("nil farm sum = %d", sum)
	}
	if err := nilFarm.Map(2, func(i int) error {
		if i == 1 {
			panic("nil-farm panic")
		}
		return nil
	}); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Errorf("nil farm must still convert panics: %v", err)
	}
	nilFarm.Close() // must not crash

	farm := NewFarm(2)
	farm.Close()
	ran := 0
	if err := farm.Map(3, func(i int) error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("closed farm ran %d points serially, want 3", ran)
	}
}

// TestFarmStatsAndPublish sanity-checks the scheduler metrics and their
// obs registry publication.
func TestFarmStatsAndPublish(t *testing.T) {
	farm := NewFarm(3)
	defer farm.Close()
	if farm.Workers() != 3 {
		t.Errorf("Workers() = %d, want 3", farm.Workers())
	}
	if (*Farm)(nil).Workers() != 0 {
		t.Error("nil farm must report 0 workers")
	}
	if err := farm.Map(30, func(int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	s := farm.Stats()
	if s.Workers != 3 || s.Submitted != 30 || s.Executed != 30 {
		t.Errorf("stats off: %+v", s)
	}
	if s.QueueHWM == 0 || s.QueueHWM > 30 {
		t.Errorf("queue hwm %d out of range", s.QueueHWM)
	}
	if len(s.UtilPct) != 3 {
		t.Errorf("want one utilization sample per worker, got %d", len(s.UtilPct))
	}
	r := obs.NewRegistry()
	farm.Publish(r)
	if r.CounterValue("farm.executed") != 30 {
		t.Errorf("farm.executed = %d in registry", r.CounterValue("farm.executed"))
	}
}

// TestPointSeedDerivation pins the seed-derivation contract: PointSeed is
// a pure function of (base, index), distinct across a sweep, and distinct
// across bases — no shared rand.Rand anywhere.
func TestPointSeedDerivation(t *testing.T) {
	seen := map[int64]string{}
	for _, base := range []int64{0, 1, 42, -7} {
		for i := 0; i < 1000; i++ {
			s := PointSeed(base, i)
			if s != PointSeed(base, i) {
				t.Fatalf("PointSeed(%d,%d) not deterministic", base, i)
			}
			key := fmt.Sprintf("base=%d i=%d", base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}
