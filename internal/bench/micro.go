package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
)

// DMA API microbenchmark: the cost of map+unmap pairs in isolation, with
// no datapath around them — the number behind Figure 5a's insight that a
// 1500 B copy (0.13us with pool overhead) beats an IOTLB invalidation
// (0.61us) before any packet processing even starts.

// MicroPattern is a synthetic dma_map/dma_unmap workload.
type MicroPattern struct {
	Name string
	// Sizes cycles through buffer sizes for successive map calls.
	Sizes []int
	Dir   dmaapi.Dir
	// Depth is how many mappings are live before unmapping begins
	// (models in-flight DMA depth).
	Depth int
}

// MicroPatterns are the standard patterns, matching the evaluation's
// workload shapes.
var MicroPatterns = []MicroPattern{
	{Name: "rx 1500B", Sizes: []int{1500}, Dir: dmaapi.FromDevice, Depth: 64},
	{Name: "tx 64KB", Sizes: []int{65536}, Dir: dmaapi.ToDevice, Depth: 16},
	{Name: "storage 4KB", Sizes: []int{4096}, Dir: dmaapi.Bidirectional, Depth: 32},
	{Name: "mixed", Sizes: []int{256, 1500, 4096, 16384}, Dir: dmaapi.FromDevice, Depth: 32},
}

// MicroResult is the average cost of one map+unmap pair.
type MicroResult struct {
	System    string
	Pattern   string
	PerPairUs float64
}

// RunMicro measures `pairs` map+unmap pairs of a pattern under a strategy.
func RunMicro(system string, pat MicroPattern, pairs int) (MicroResult, error) {
	r, _, err := runMicro(system, pat, pairs, nil)
	return r, err
}

// runMicro is RunMicro with an optional observer; when o is non-nil the
// returned profile attributes the microbenchmark proc's busy cycles.
func runMicro(system string, pat MicroPattern, pairs int, o *obs.Observer) (MicroResult, *obs.Profile, error) {
	cfg := DefaultConfig(system, RX, 1, pat.Sizes[0])
	cfg.NoHint = true
	cfg.Obs = o
	mach, err := NewMachine(cfg)
	if err != nil {
		return MicroResult{}, nil, err
	}
	var perPair float64
	var runErr error
	pr := mach.Eng.Spawn("micro", 0, 0, func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(1))
		type live struct {
			addr iommu.IOVA
			buf  mem.Buf
		}
		var q []live
		// Pre-allocate one buffer per depth slot per size.
		bufs := map[int][]mem.Buf{}
		for _, sz := range pat.Sizes {
			for i := 0; i < pat.Depth+1; i++ {
				b, err := mach.Kmal.Alloc(0, sz)
				if err != nil {
					runErr = err
					return
				}
				bufs[sz] = append(bufs[sz], b)
			}
		}
		used := map[int]int{}
		start := p.Now()
		for i := 0; i < pairs; i++ {
			sz := pat.Sizes[i%len(pat.Sizes)]
			b := bufs[sz][used[sz]%len(bufs[sz])]
			used[sz]++
			addr, err := mach.Mapper.Map(p, b, pat.Dir)
			if err != nil {
				runErr = err
				return
			}
			q = append(q, live{addr: addr, buf: b})
			if len(q) > pat.Depth {
				v := q[rng.Intn(len(q))]
				// Unmap a random live mapping (LRU-ish churn).
				for j := range q {
					if q[j] == v {
						q[j] = q[len(q)-1]
						q = q[:len(q)-1]
						break
					}
				}
				if err := mach.Mapper.Unmap(p, v.addr, v.buf.Size, pat.Dir); err != nil {
					runErr = err
					return
				}
			}
		}
		for _, v := range q {
			if err := mach.Mapper.Unmap(p, v.addr, v.buf.Size, pat.Dir); err != nil {
				runErr = err
				return
			}
		}
		mach.Mapper.Quiesce(p)
		perPair = cycles.Micros(p.Now()-start) / float64(pairs)
	})
	mach.Eng.Run(1 << 50)
	var prof *obs.Profile
	if o != nil {
		snap := o.Prof.Snapshot()
		snap.TotalBusy = pr.Busy()
		prof = &snap
	}
	mach.Eng.Stop()
	if runErr != nil {
		return MicroResult{}, nil, runErr
	}
	return MicroResult{System: system, Pattern: pat.Name, PerPairUs: perPair}, prof, nil
}

// APIMicro builds the microbenchmark table across patterns and systems.
func APIMicro(opt Options) (*Table, error) {
	systems := opt.systems()
	t := &Table{
		Name:    "apimicro",
		Title:   "DMA API microbenchmark: us per map+unmap pair (no datapath)",
		Columns: append([]string{"pattern"}, systems...),
	}
	t.SetWinner("pair_us", true)
	results := make([]MicroResult, len(MicroPatterns)*len(systems))
	err := opt.farm().Map(len(results), func(i int) error {
		pat, sys := MicroPatterns[i/len(systems)], systems[i%len(systems)]
		r, err := RunMicro(sys, pat, 2000)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", sys, pat.Name, err)
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, pat := range MicroPatterns {
		row := []string{pat.Name}
		for si, sys := range systems {
			r := results[pi*len(systems)+si]
			row = append(row, fmt.Sprintf("%.3f", r.PerPairUs))
			t.Point(sys, pat.Name, map[string]float64{"pair_us": r.PerPairUs})
		}
		t.AddRow(row...)
	}
	return t, nil
}
