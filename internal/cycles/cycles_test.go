package cycles

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultCalibrationMatchesPaperMicrocosts(t *testing.T) {
	c := Default()

	// Paper Fig 5a: copying a 1500 B ethernet packet costs 0.11us.
	if got := Micros(c.Memcpy(1500)); math.Abs(got-0.11) > 0.02 {
		t.Errorf("memcpy(1500B) = %.3fus, want ~0.11us", got)
	}
	// Paper Fig 5b: copying a 64 KiB TSO buffer costs 4.65us.
	if got := Micros(c.Memcpy(64 * 1024)); math.Abs(got-4.65) > 0.3 {
		t.Errorf("memcpy(64KiB) = %.3fus, want ~4.65us", got)
	}
	// Paper Fig 5a: IOTLB invalidation costs 0.61us single-core.
	if got := Micros(c.IOTLBInvalidateHW); math.Abs(got-0.61) > 0.02 {
		t.Errorf("IOTLB invalidation = %.3fus, want ~0.61us", got)
	}
	// Paper Fig 5a: page table management costs 0.17us per packet.
	if got := Micros(c.PTMap + c.PTUnmap); math.Abs(got-0.17) > 0.02 {
		t.Errorf("page table mgmt = %.3fus, want ~0.17us", got)
	}
	// Paper Fig 5a: shadow buffer management costs 0.02us per packet.
	if got := Micros(c.ShadowAcquire + c.ShadowFind + c.ShadowRelease); math.Abs(got-0.02) > 0.005 {
		t.Errorf("shadow mgmt = %.3fus, want ~0.02us", got)
	}
}

func TestCopyIs5xFasterThanInvalidation(t *testing.T) {
	// The paper's headline microbenchmark: "copying a 1500 B ethernet
	// packet is 5.5x faster than invalidating the IOTLB".
	c := Default()
	ratio := float64(c.IOTLBInvalidateHW) / float64(c.Memcpy(1500))
	if ratio < 4.5 || ratio > 6.5 {
		t.Errorf("invalidation/memcpy(1500B) ratio = %.2f, want ~5.5", ratio)
	}
}

func TestMemcpyMonotonic(t *testing.T) {
	c := Default()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return c.Memcpy(x) <= c.Memcpy(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPollutionOnlyAboveL1(t *testing.T) {
	c := Default()
	if c.Pollution(c.L1Bytes) != 0 {
		t.Errorf("pollution at L1 size should be 0")
	}
	if c.Pollution(c.L1Bytes-1) != 0 {
		t.Errorf("pollution below L1 size should be 0")
	}
	if c.Pollution(64*1024) == 0 {
		t.Errorf("64KiB copy should pollute")
	}
	us := Micros(c.Pollution(64 * 1024))
	if us < 1.0 || us > 3.5 {
		t.Errorf("pollution(64KiB) = %.2fus, want ~2us (paper Fig 5b)", us)
	}
}

func TestWireCycles(t *testing.T) {
	c := Default()
	// A 1500 B frame at 40 Gb/s occupies (1500+24)*8/40e9 s = 304.8ns
	// = ~731 cycles at 2.4 GHz.
	got := c.WireCycles(1500)
	if got < 700 || got > 760 {
		t.Errorf("WireCycles(1500) = %d, want ~731", got)
	}
	// Line-rate packet rate should be ~3.28 Mpps.
	pps := PerSec(1, got)
	if pps < 3.0e6 || pps > 3.5e6 {
		t.Errorf("line rate = %.2f Mpps, want ~3.28", pps/1e6)
	}
}

func TestTimeConversions(t *testing.T) {
	if got := Micros(2400); got != 1.0 {
		t.Errorf("Micros(2400) = %v, want 1", got)
	}
	if got := FromMicros(1.0); got != 2400 {
		t.Errorf("FromMicros(1) = %v, want 2400", got)
	}
	if got := FromMillis(10); got != 24_000_000 {
		t.Errorf("FromMillis(10) = %v", got)
	}
	if got := Millis(24_000_000); got != 10 {
		t.Errorf("Millis = %v", got)
	}
	f := func(us uint32) bool {
		c := FromMicros(float64(us))
		return math.Abs(Micros(c)-float64(us)) < 0.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGbps(t *testing.T) {
	// 5 GB over one second of cycles = 40 Gb/s.
	if got := Gbps(5_000_000_000, Hz); math.Abs(got-40) > 0.01 {
		t.Errorf("Gbps = %v, want 40", got)
	}
	if Gbps(100, 0) != 0 {
		t.Error("zero window should give 0")
	}
	if PerSec(100, 0) != 0 {
		t.Error("zero window should give 0")
	}
}

func TestRemoteMemcpyFactor(t *testing.T) {
	c := Default()
	local := c.Memcpy(4096)
	remote := c.MemcpyRemote(4096)
	if remote <= local {
		t.Errorf("remote copy (%d) should cost more than local (%d)", remote, local)
	}
	want := local * c.NUMARemoteFactorPct / 100
	if remote != want {
		t.Errorf("remote = %d, want %d", remote, want)
	}
}

func TestCopyUserZeroAndNegative(t *testing.T) {
	c := Default()
	if c.CopyUser(0) != 0 || c.CopyUser(-5) != 0 {
		t.Error("CopyUser of non-positive length should be free")
	}
	if c.Memcpy(0) != 0 || c.Memcpy(-1) != 0 {
		t.Error("Memcpy of non-positive length should be free")
	}
}

func TestJSONRoundTripAndOverlay(t *testing.T) {
	var buf bytes.Buffer
	if err := Default().SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	c, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if *c != *Default() {
		t.Error("round trip changed the model")
	}
	// Partial overlay: only one knob set; the rest stay default.
	c2, err := LoadJSON(strings.NewReader(`{"IOTLBInvalidateHW": 9999}`))
	if err != nil {
		t.Fatal(err)
	}
	if c2.IOTLBInvalidateHW != 9999 {
		t.Error("overlay ignored")
	}
	if c2.MemcpyPerByte != Default().MemcpyPerByte {
		t.Error("overlay clobbered defaults")
	}
}

func TestJSONRejectsBadModels(t *testing.T) {
	cases := []string{
		`{"NoSuchKnob": 1}`,
		`{"WireGbps": 0}`,
		`{"NUMARemoteFactorPct": 50}`,
		`{"RemoteSyscallsPerSec": 0}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := LoadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("should reject %q", c)
		}
	}
}
