package cycles

// Component tags used for per-packet time accounting. They mirror the
// stacked-bar components of Figures 5, 8 and 10 in the paper.
const (
	TagCopyMgmt   = "copy mgmt"        // shadow buffer pool operations
	TagSpinlock   = "spinlock"         // waiting on contended spinlocks
	TagInvalidate = "invalidate iotlb" // posting + waiting for IOTLB invalidations
	TagPTMgmt     = "iommu page table mgmt"
	TagMemcpy     = "memcpy" // copies to/from shadow buffers
	TagRxParse    = "rx parsing"
	TagCopyUser   = "copy_user"
	TagOther      = "other"
	TagIOVA       = "iova alloc" // folded into "other" when printing paper-style stacks
)

// Components lists the stacked-bar components in the order the paper's
// figures present them.
var Components = []string{
	TagCopyMgmt,
	TagSpinlock,
	TagInvalidate,
	TagPTMgmt,
	TagMemcpy,
	TagRxParse,
	TagCopyUser,
	TagOther,
}
