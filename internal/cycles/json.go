package cycles

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON (de)serialization of the cost model, so users can recalibrate the
// simulation for a different machine without rebuilding. Missing fields in
// a loaded file keep their Default values, making partial override files
// ("just change the invalidation cost") convenient.

// SaveJSON writes the cost model as indented JSON.
func (c *Costs) SaveJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// LoadJSON reads a cost model, starting from Default and overlaying any
// fields present in the JSON. Unknown fields are rejected (they are almost
// certainly typos of real knob names).
func LoadJSON(r io.Reader) (*Costs, error) {
	c := Default()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(c); err != nil {
		return nil, fmt.Errorf("cycles: bad cost model: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate rejects cost models that would break the simulation.
func (c *Costs) Validate() error {
	if c.WireGbps == 0 {
		return fmt.Errorf("cycles: WireGbps must be positive")
	}
	if c.L1Bytes < 0 {
		return fmt.Errorf("cycles: L1Bytes must be non-negative")
	}
	if c.NUMARemoteFactorPct < 100 {
		return fmt.Errorf("cycles: NUMARemoteFactorPct must be >= 100")
	}
	if c.RemoteSyscallsPerSec == 0 {
		return fmt.Errorf("cycles: RemoteSyscallsPerSec must be positive")
	}
	return nil
}
