// Package cycles defines the calibrated cycle-cost model used by the
// simulator. All performance constants in the reproduction live here, each
// with its derivation from the paper ("True IOMMU Protection from DMA
// Attacks", ASPLOS'16) so the model is auditable and tunable in one place.
//
// The evaluation machine in the paper is a dual-socket 2.40 GHz Intel Xeon
// E5-2630 v3 (Haswell), 8 cores per socket, two NUMA domains, with a 40 Gb/s
// Intel Fortville NIC. All constants below are expressed in CPU cycles at
// that frequency.
package cycles

// Hz is the simulated CPU frequency (2.40 GHz Haswell, as in the paper).
const Hz = 2_400_000_000

// Costs holds every tunable cost constant of the simulation. A zero value is
// not useful; construct with Default and tweak fields for ablations.
type Costs struct {
	// ---- IOMMU hardware ----

	// IOTLBInvalidateHW is the hardware latency of processing one IOTLB
	// invalidation command, including the completion (wait-descriptor)
	// round trip observed by a busy-waiting CPU.
	//
	// Paper: "invalidation can take ~2000 cycles" (citing rIOMMU,
	// ASPLOS'15) and the measured single-core strict cost is 0.61us =
	// 1464 cycles at 2.4GHz. We use the measured figure.
	IOTLBInvalidateHW uint64

	// InvSubmit is the CPU cost of formatting and posting one descriptor
	// into the invalidation queue (excluding the queue spinlock).
	InvSubmit uint64

	// IOTLBWalk is the device-side latency of a page-table walk on an
	// IOTLB miss. It delays the DMA, not the CPU.
	IOTLBWalk uint64

	// ---- IOMMU page-table management (software) ----

	// PTMap and PTUnmap are the per-operation software costs of creating
	// and destroying an IOVA mapping in the device page table.
	//
	// Paper, Fig 5a: "IOMMU page table management costs both identity-
	// and identity+ 0.17us" per packet = 408 cycles, split roughly
	// evenly between the map and unmap halves.
	PTMap   uint64
	PTUnmap uint64

	// PTPerPage is the extra page-table cost per additional 4 KiB page in
	// a multi-page mapping (the first page is covered by PTMap/PTUnmap).
	PTPerPage uint64

	// ---- IOVA allocation (Linux-style tree allocator) ----

	// IOVAAlloc and IOVAFree are the tree-manipulation costs of the
	// baseline Linux IOVA allocator, excluding its spinlock. The identity
	// variants (Peleg et al., ATC'15) avoid these entirely, which is why
	// we compare against identity+/identity- as the paper does.
	IOVAAlloc uint64
	IOVAFree  uint64

	// MagazineAlloc is the per-op cost of the scalable per-core IOVA
	// allocator used by the shadow pool's fallback path.
	MagazineAlloc uint64

	// ---- Shadow buffer pool ----

	// ShadowAcquire, ShadowFind and ShadowRelease are the pool costs.
	//
	// Paper, Fig 5a: "copy spends 0.02us on shadow buffer management"
	// per packet = 48 cycles across acquire+find+release.
	ShadowAcquire uint64
	ShadowFind    uint64
	ShadowRelease uint64

	// ShadowGrow is the (infrequent) cost of allocating and IOMMU-mapping
	// a fresh shadow buffer when a free list runs dry.
	ShadowGrow uint64

	// ---- Copying ----

	// MemcpyBase and MemcpyPerByte model REP MOVSB on an ERMS Haswell.
	//
	// Paper, Fig 5: 0.11us per 1500 B packet and 4.65us per 64 KiB
	// buffer, i.e. ~14 GB/s: 264 = base + 1500*b and 11160 = base +
	// 65536*b give b ~= 0.170 cycles/B and base ~= 9 cycles. We round
	// the base up to cover call overhead on tiny copies.
	MemcpyBase    uint64
	MemcpyPerByte uint64 // in 1/256ths of a cycle per byte (fixed point)

	// L1Bytes and PollutionPerByte model cache pollution: a copy larger
	// than the 32 KiB L1 evicts data the core needs afterwards.
	//
	// Paper, Fig 5b: copy's "other" time grows by ~2us when copying
	// 64 KiB TSO buffers. 65536-32768 = 32768 polluting bytes over
	// ~4800 cycles => ~0.146 cyc/B => 37/256ths.
	L1Bytes          int
	PollutionPerByte uint64 // 1/256ths of a cycle per byte beyond L1Bytes

	// NUMARemoteFactorPct scales copy costs when source and destination
	// are on different NUMA domains (percent, 100 = no penalty). The
	// shadow pool's sticky NUMA-local buffers exist to avoid this.
	NUMARemoteFactorPct uint64

	// ---- Locks ----

	// LockUncontended is the cost of an uncontended spinlock
	// acquire+release pair (local cache hit, ~30 cycles on Haswell).
	LockUncontended uint64

	// LockHandoffBase and LockHandoffPerWaiter model contended handoff:
	// every handoff moves the lock cache line across cores, and with N
	// spinners the coherence traffic grows with N (ticket-lock style
	// behaviour as in Linux). These constants are fit so that 16-core
	// strict RX shows the paper's ~5x collapse (Fig 6, Fig 8a).
	LockHandoffBase      uint64
	LockHandoffPerWaiter uint64

	// ---- Network datapath (baseline per-packet costs, Fig 5) ----

	// RxParse is the driver+stack per-packet receive cost (descriptor
	// processing, skb setup, protocol parsing).
	RxParse uint64

	// CopyUserBase/PerByte is the kernel<->user copy (copy_to_user /
	// copy_from_user); same ~14 GB/s engine as memcpy.
	CopyUserBase    uint64
	CopyUserPerByte uint64 // 1/256ths of a cycle per byte

	// PktOther and PktPerByte are the remaining per-wire-packet receive
	// costs (softirq, TCP/IP, memory management, netperf loop), split
	// into a fixed part and a size-dependent part. Fit jointly so that
	// single-core no-iommu RX lands near the paper's ~17.5 Gb/s plateau
	// at MSS-sized frames while small frames stay cheap (Fig 3c).
	PktOther   uint64
	PktPerByte uint64 // 1/256ths of a cycle per byte

	// MsgOther is the per-message (per-syscall) cost on the send or
	// receive side (socket call, wakeup).
	MsgOther uint64

	// TxSkbOther is the per-skb transmit-side cost (qdisc, doorbell,
	// completion processing) in addition to MsgOther. TxSkbPerByte adds
	// the size-dependent part (page references, TSO descriptor setup),
	// fit so that single-core no-iommu TX matches the paper's Figure 4
	// curve (~10 Gb/s at 1 KiB messages, wire-limited at 64 KiB).
	TxSkbOther   uint64
	TxSkbPerByte uint64 // 1/256ths of a cycle per byte

	// InterruptEntry is the per-interrupt cost charged to the core that
	// services a NIC interrupt (batched across packets by NAPI).
	InterruptEntry uint64

	// BlkSubmit and BlkComplete are the host-side block-layer costs of
	// issuing and completing one storage command (blk-mq + NVMe driver).
	BlkSubmit   uint64
	BlkComplete uint64

	// SyncMaint is the cache-maintenance cost of a dma_sync_* operation
	// on zero-copy mappings (copying strategies pay copy costs instead).
	SyncMaint uint64

	// ---- Device / wire timing ----

	// WireGbps is the link speed.
	WireGbps uint64

	// DMALatency is the device-side latency of one DMA transaction
	// (PCIe round trip); it delays packet delivery, not the CPU.
	DMALatency uint64

	// IRQLatency is the delay between a device completion and the CPU
	// observing the interrupt.
	IRQLatency uint64

	// SchedLatency is the idle delay between an interrupt's arrival and
	// the woken task actually running (scheduler wakeup path).
	SchedLatency uint64

	// ClientOverhead is the remote netperf client's per-transaction
	// processing time in request/response tests.
	ClientOverhead uint64

	// RemoteSyscallsPerSec caps the traffic generator's message rate;
	// the paper notes small-message RX throughput is limited by "the
	// sender's system call execution rate" (Fig 3 footnote 6).
	RemoteSyscallsPerSec uint64
}

// Default returns the cost model calibrated to the paper's machine.
func Default() *Costs {
	return &Costs{
		IOTLBInvalidateHW: 1464, // 0.61us measured (paper Fig 5a)
		InvSubmit:         60,
		IOTLBWalk:         300,

		PTMap:     204, // 0.17us total across map+unmap (paper Fig 5a)
		PTUnmap:   204,
		PTPerPage: 48,

		IOVAAlloc:     160,
		IOVAFree:      120,
		MagazineAlloc: 40,

		ShadowAcquire: 20, // 0.02us total (paper Fig 5a)
		ShadowFind:    8,
		ShadowRelease: 20,
		ShadowGrow:    2400,

		MemcpyBase:    24,
		MemcpyPerByte: 44, // 44/256 = 0.172 cyc/B ~= 14 GB/s

		L1Bytes:          32 * 1024,
		PollutionPerByte: 55, // ~3us extra at 64 KiB copies (Fig 5b "other")

		NUMARemoteFactorPct: 140,

		LockUncontended:      30,
		LockHandoffBase:      120,
		LockHandoffPerWaiter: 220,

		RxParse:         360, // 0.15us
		CopyUserBase:    24,
		CopyUserPerByte: 44,
		PktOther:        600, // fit: no-iommu 1-core RX ~17.5 Gb/s
		PktPerByte:      44,
		MsgOther:        500,
		TxSkbOther:      1100,
		TxSkbPerByte:    41,
		InterruptEntry:  600,
		BlkSubmit:       1900, // ~0.8us
		BlkComplete:     1700, // ~0.7us
		SyncMaint:       60,

		WireGbps:             40,
		DMALatency:           700,
		IRQLatency:           2400,
		SchedLatency:         9600,
		ClientOverhead:       12000,
		RemoteSyscallsPerSec: 1_000_000,
	}
}

// Memcpy returns the cycle cost of copying n bytes (local NUMA).
func (c *Costs) Memcpy(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return c.MemcpyBase + uint64(n)*c.MemcpyPerByte/256
}

// MemcpyRemote returns the cycle cost of copying n bytes across NUMA domains.
func (c *Costs) MemcpyRemote(n int) uint64 {
	return c.Memcpy(n) * c.NUMARemoteFactorPct / 100
}

// Pollution returns the cache-pollution surcharge of an n-byte copy: the
// cycles later spent refilling the L1 working set the copy evicted.
func (c *Costs) Pollution(n int) uint64 {
	if n <= c.L1Bytes {
		return 0
	}
	return uint64(n-c.L1Bytes) * c.PollutionPerByte / 256
}

// PktCost returns the residual per-received-frame stack cost for an
// n-byte frame.
func (c *Costs) PktCost(n int) uint64 {
	return c.PktOther + uint64(n)*c.PktPerByte/256
}

// TxSkb returns the per-skb transmit-path kernel cost for an n-byte skb.
func (c *Costs) TxSkb(n int) uint64 {
	return c.TxSkbOther + uint64(n)*c.TxSkbPerByte/256
}

// CopyUser returns the cycle cost of a kernel<->user copy of n bytes.
func (c *Costs) CopyUser(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return c.CopyUserBase + uint64(n)*c.CopyUserPerByte/256
}

// WireCycles returns the wire occupancy, in cycles, of an n-byte frame
// (including a 24-byte ethernet preamble+FCS+IFG overhead per frame).
func (c *Costs) WireCycles(n int) uint64 {
	bits := uint64(n+24) * 8
	// cycles = bits / (Gbps * 1e9 bit/s) * Hz
	return bits * Hz / (c.WireGbps * 1_000_000_000)
}
