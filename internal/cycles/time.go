package cycles

// Helpers for converting between cycles, time and rates, so that every
// reported number matches the units in the paper's figures.

// Micros converts cycles to microseconds.
func Micros(c uint64) float64 {
	return float64(c) / (Hz / 1e6)
}

// Millis converts cycles to milliseconds.
func Millis(c uint64) float64 {
	return float64(c) / (Hz / 1e3)
}

// FromMicros converts microseconds to cycles.
func FromMicros(us float64) uint64 {
	return uint64(us * (Hz / 1e6))
}

// FromMillis converts milliseconds to cycles.
func FromMillis(ms float64) uint64 {
	return uint64(ms * (Hz / 1e3))
}

// Gbps returns the throughput, in gigabits per second, of transferring
// bytes of payload over window cycles.
func Gbps(bytes uint64, window uint64) float64 {
	if window == 0 {
		return 0
	}
	seconds := float64(window) / Hz
	return float64(bytes) * 8 / 1e9 / seconds
}

// PerSec returns an event rate (events per second) over window cycles.
func PerSec(events uint64, window uint64) float64 {
	if window == 0 {
		return 0
	}
	return float64(events) / (float64(window) / Hz)
}
