package dmafuzz

import "fmt"

// applySecurityOracle checks a backend's probe aggregates against its
// paper-predicted profile. Both directions are enforced: forbidden
// windows must never be observed, and predicted windows must be
// positively observed whenever the trace presented an eligible probe —
// so a backend that silently stopped exhibiting its documented window
// (or an oracle that stopped detecting it) fails loudly instead of
// passing vacuously.
func applySecurityOracle(br *BackendResult, plan FaultPlan) {
	prof := profileFor(br.Backend)
	sec := br.Security

	if !prof.windowAllowed && sec.StaleObserved > 0 {
		br.violatef("security: %d stale-IOVA device writes reached OS memory (no window predicted for %s)",
			sec.StaleObserved, br.Backend)
	}
	if prof.windowRequired && sec.StaleEligible > 0 && sec.StaleObserved == 0 {
		br.violatef("security: deferred-invalidation window never observed (%d eligible probes) — oracle or model broken",
			sec.StaleEligible)
	}

	if !prof.subPageAllowed && sec.SubPageObserved > 0 {
		br.violatef("security: %d sub-page sibling reads leaked co-located data (byte-granular backend)",
			sec.SubPageObserved)
	}
	if prof.subPageRequired && sec.SubPageEligible > 0 && sec.SubPageObserved == 0 {
		br.violatef("security: predicted sub-page leak never observed (%d eligible probes)",
			sec.SubPageEligible)
	}

	arbLeaks := sec.ArbitraryLeaks + sec.ProberLeaks
	arbTries := sec.ArbitraryProbes + sec.ProberReads
	if !prof.arbitrary && arbLeaks > 0 {
		br.violatef("security: %d arbitrary device reads of never-mapped memory succeeded", arbLeaks)
	}
	if prof.arbitrary && arbTries > 0 && arbLeaks == 0 {
		br.violatef("security: predicted arbitrary access never observed (%d attempts)", arbTries)
	}

	// Universal teardown containment: after quiesce + settle, no stale
	// IOVA reaches an OS buffer under any backend.
	if sec.FinalObserved > 0 {
		br.violatef("security: %d/%d stale IOVAs still reached OS memory after teardown settle",
			sec.FinalObserved, sec.FinalProbes)
	}
}

// applyResourceOracle checks that the mapper returned to baseline after
// each pass and that the second pass ended in exactly the first pass's
// steady state (warm caches are allowed once; monotonic growth is a
// leak). Under allocation-failure injection the steady-state comparison
// is suspended (failures land at different points in each pass), but the
// accounting-zero invariant is not: error paths must unwind fully.
func applyResourceOracle(br *BackendResult, plan FaultPlan) {
	if !br.Resource.AccountingZero1 {
		br.violatef("resource: accounting not zero after pass 1 teardown")
	}
	if !br.Resource.AccountingZero2 {
		br.violatef("resource: accounting not zero after pass 2 teardown: %+v", br.Resource.Accounting2)
	}
	if plan.AllocFailEvery != 0 {
		return
	}
	for d := range br.Resource.InUse1 {
		if d < len(br.Resource.InUse2) && br.Resource.InUse1[d] != br.Resource.InUse2[d] {
			br.violatef("resource: domain %d memory not steady across passes: %d -> %d bytes",
				d, br.Resource.InUse1[d], br.Resource.InUse2[d])
		}
	}
}

// applyDifferentialOracle compares the benign per-op outcomes of every
// backend against the first: skip decisions, error/fault outcomes,
// transfer sizes, and content checksums must be identical — drivers
// cannot tell the protection strategies apart (paper §5.1). Probe ops
// are compared only on their (backend-invariant) skip decision; their
// outcomes belong to the security oracle.
func applyDifferentialOracle(tr *Trace, results []*BackendResult) []string {
	diffs := []string{}
	if len(results) < 2 {
		return diffs
	}
	ref := results[0]
	for _, other := range results[1:] {
		n := len(ref.OpResults)
		if len(other.OpResults) != n {
			diffs = append(diffs, fmt.Sprintf("differential: %s recorded %d op results, %s recorded %d",
				ref.Backend, n, other.Backend, len(other.OpResults)))
			continue
		}
		mismatches := 0
		for i := 0; i < n; i++ {
			a := ref.OpResults[i].comparable(tr.Ops[i].Kind)
			b := other.OpResults[i].comparable(tr.Ops[i].Kind)
			if a != b {
				mismatches++
				if mismatches <= 5 { // cap the noise; one is already fatal
					diffs = append(diffs, fmt.Sprintf(
						"differential: op %d (%s): %s={%s} vs %s={%s}",
						i, tr.Ops[i].Kind, ref.Backend, a, other.Backend, b))
				}
			}
		}
		if mismatches > 5 {
			diffs = append(diffs, fmt.Sprintf("differential: %s vs %s: %d further mismatches elided",
				ref.Backend, other.Backend, mismatches-5))
		}
	}
	return diffs
}
