package dmafuzz

// Minimize shrinks a failing trace to a (locally) minimal op sequence
// that still fails the oracles, using ddmin over the op list followed by
// greedy single-op elimination. Skip semantics make every subsequence a
// valid trace, so no dependency repair is needed. Returns the minimized
// trace and the number of oracle runs spent.
func Minimize(tr *Trace, backends []string, plan FaultPlan) (*Trace, int, error) {
	runs := 0
	fails := func(ops []Op) (bool, error) {
		runs++
		rep, err := RunTrace(&Trace{Seed: tr.Seed, Ops: ops}, backends, plan)
		if err != nil {
			return false, err
		}
		return rep.Failed(), nil
	}

	ops := append([]Op{}, tr.Ops...)
	if ok, err := fails(ops); err != nil {
		return nil, runs, err
	} else if !ok {
		// Not failing: nothing to minimize.
		return &Trace{Seed: tr.Seed, Ops: ops}, runs, nil
	}

	// ddmin: try removing progressively finer-grained chunks.
	granularity := 2
	for len(ops) > 1 {
		chunk := (len(ops) + granularity - 1) / granularity
		reduced := false
		for start := 0; start < len(ops); start += chunk {
			end := start + chunk
			if end > len(ops) {
				end = len(ops)
			}
			candidate := append(append([]Op{}, ops[:start]...), ops[end:]...)
			if len(candidate) == 0 {
				continue
			}
			ok, err := fails(candidate)
			if err != nil {
				return nil, runs, err
			}
			if ok {
				ops = candidate
				reduced = true
				break
			}
		}
		if reduced {
			granularity = 2
			continue
		}
		if granularity >= len(ops) {
			break
		}
		granularity *= 2
		if granularity > len(ops) {
			granularity = len(ops)
		}
	}

	// Greedy single-op elimination until a fixed point.
	for again := true; again; {
		again = false
		for i := 0; i < len(ops); i++ {
			candidate := append(append([]Op{}, ops[:i]...), ops[i+1:]...)
			if len(candidate) == 0 {
				continue
			}
			ok, err := fails(candidate)
			if err != nil {
				return nil, runs, err
			}
			if ok {
				ops = candidate
				again = true
				i--
			}
		}
	}
	return &Trace{Seed: tr.Seed, Ops: ops}, runs, nil
}
