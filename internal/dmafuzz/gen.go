package dmafuzz

import "math/rand"

// NumSlots is the number of streaming-mapping slots a trace addresses.
const NumSlots = 16

// NumCoherentSlots is the number of coherent-allocation slots.
const NumCoherentSlots = 4

// genSlot mirrors just enough executor state for the generator to emit
// mostly-meaningful ops (the executor's skip semantics tolerate the rest).
type genSlot struct {
	live     bool
	dir      uint8 // dmaapi.Dir value
	size     int
	sib      bool
	shared   bool
	wasLive  bool // has a former mapping to probe
	devWrote bool
}

// Generate produces a deterministic n-op trace from the seed. The same
// (seed, n) always yields the same trace, independent of backend, host,
// or Go version (math/rand's seeded sequence is stable by contract).
func Generate(seed int64, n int) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Seed: seed, Ops: make([]Op, 0, n)}
	var slots [NumSlots]genSlot
	var coherent [NumCoherentSlots]bool

	liveSlots := func(pred func(*genSlot) bool) []int {
		var out []int
		for i := range slots {
			if slots[i].live && (pred == nil || pred(&slots[i])) {
				out = append(out, i)
			}
		}
		return out
	}
	freeSlot := func() int {
		for i := range slots {
			if !slots[i].live {
				return i
			}
		}
		return -1
	}

	// Buffer sizes: mostly sub-page (kmalloc co-location, partial-page
	// DMA), some multi-page, some large enough for the huge-buffer hybrid
	// path of the copy-hybrid backend (pool max class 16 KiB).
	pickSize := func() int {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			return 1 + rng.Intn(2048)
		case 5, 6:
			return 1 + rng.Intn(4096)
		case 7, 8:
			return 4097 + rng.Intn(12288)
		default:
			return 16385 + rng.Intn(65536-16385)
		}
	}

	emit := func(op Op) { t.Ops = append(t.Ops, op) }

	for len(t.Ops) < n {
		roll := rng.Intn(100)
		switch {
		case roll < 24: // map
			s := freeSlot()
			if s < 0 {
				break
			}
			size := pickSize()
			op := Op{
				Kind: OpMap, Slot: s, Size: size,
				Dir: uint8(1 + rng.Intn(3)), Dom: rng.Intn(2),
				Sib: size <= 2048 && rng.Intn(2) == 0,
			}
			emit(op)
			slots[s] = genSlot{live: true, dir: op.Dir, size: size, sib: op.Sib}
		case roll < 28: // overlapping map of a live ToDevice buffer
			srcs := liveSlots(func(g *genSlot) bool { return g.dir == 1 && !g.shared })
			s := freeSlot()
			if len(srcs) == 0 || s < 0 {
				break
			}
			src := srcs[rng.Intn(len(srcs))]
			emit(Op{Kind: OpMapOverlap, Slot: s, Src: src})
			slots[s] = genSlot{live: true, dir: 1, size: slots[src].size, shared: true}
			slots[src].shared = true
		case roll < 30: // zero-length map (must fail everywhere)
			emit(Op{Kind: OpMapZero, Slot: rng.Intn(NumSlots)})
		case roll < 46: // unmap, often immediately followed by a stale probe
			ls := liveSlots(nil)
			if len(ls) == 0 {
				break
			}
			s := ls[rng.Intn(len(ls))]
			emit(Op{Kind: OpUnmap, Slot: s})
			probeWorthy := slots[s].devWrote
			slots[s] = genSlot{wasLive: true}
			if probeWorthy && rng.Intn(10) < 6 {
				emit(Op{Kind: OpProbeStale, Slot: s})
			}
		case roll < 58: // benign device write
			ls := liveSlots(func(g *genSlot) bool { return g.dir >= 2 })
			if len(ls) == 0 {
				break
			}
			s := ls[rng.Intn(len(ls))]
			off := rng.Intn(slots[s].size)
			emit(Op{Kind: OpDevWrite, Slot: s, Off: off, Len: 1 + rng.Intn(slots[s].size-off)})
			slots[s].devWrote = true
		case roll < 68: // benign device read
			ls := liveSlots(func(g *genSlot) bool { return g.dir == 1 || g.dir == 3 })
			if len(ls) == 0 {
				break
			}
			s := ls[rng.Intn(len(ls))]
			off := rng.Intn(slots[s].size)
			emit(Op{Kind: OpDevRead, Slot: s, Off: off, Len: 1 + rng.Intn(slots[s].size-off)})
		case roll < 73: // sync for CPU
			ls := liveSlots(func(g *genSlot) bool { return g.dir >= 2 })
			if len(ls) == 0 {
				break
			}
			emit(Op{Kind: OpSyncCPU, Slot: ls[rng.Intn(len(ls))]})
		case roll < 78: // CPU write + sync for device
			ls := liveSlots(func(g *genSlot) bool { return (g.dir == 1 || g.dir == 3) && !g.shared })
			if len(ls) == 0 {
				break
			}
			s := ls[rng.Intn(len(ls))]
			off := rng.Intn(slots[s].size)
			emit(Op{Kind: OpCPUWriteSync, Slot: s, Off: off, Len: 1 + rng.Intn(slots[s].size-off)})
		case roll < 84: // stale-window probe of a formerly mapped slot
			var cands []int
			for i := range slots {
				if !slots[i].live && slots[i].wasLive {
					cands = append(cands, i)
				}
			}
			if len(cands) == 0 {
				break
			}
			emit(Op{Kind: OpProbeStale, Slot: cands[rng.Intn(len(cands))]})
		case roll < 89: // sub-page sibling probe
			ls := liveSlots(func(g *genSlot) bool { return g.sib && (g.dir == 1 || g.dir == 3) })
			if len(ls) == 0 {
				break
			}
			emit(Op{Kind: OpProbeSubPage, Slot: ls[rng.Intn(len(ls))]})
		case roll < 92: // arbitrary never-mapped probe
			emit(Op{Kind: OpProbeArbitrary})
		case roll < 95: // coherent alloc
			c := -1
			for i := range coherent {
				if !coherent[i] {
					c = i
					break
				}
			}
			if c < 0 {
				break
			}
			emit(Op{Kind: OpCoherentAlloc, Slot: c, Size: 1 + rng.Intn(8192)})
			coherent[c] = true
		case roll < 98: // coherent free
			c := -1
			for i := range coherent {
				if coherent[i] {
					c = i
					break
				}
			}
			if c < 0 {
				break
			}
			emit(Op{Kind: OpCoherentFree, Slot: c})
			coherent[c] = false
		default:
			emit(Op{Kind: OpQuiesce})
		}
	}
	t.Ops = t.Ops[:n]
	return t
}
