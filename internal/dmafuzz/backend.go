package dmafuzz

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/shadow"
	"repro/internal/sim"
)

// Backends lists every protection strategy the harness runs traces
// through, in report order. noiommu is excluded: it tracks no mappings and
// is trivially insecure, so neither oracle family applies.
var Backends = []string{
	"strict", "defer", "identity+", "identity-", "selfinval",
	"swiotlb", "copy", "copy-hybrid", "copy-degraded",
}

// selfInvalTTL is the self-invalidation TTL used for the selfinval
// backend; teardownSettle must exceed it so final probes run after every
// window has closed.
const selfInvalTTL = 50

// teardownSettle is how long (ms) the epilogue sleeps after Quiesce before
// the window-must-close probes: past the selfinval TTL, the deferred flush
// timer, and hardware invalidation drains.
const teardownSettle = 60

// FaultPlan configures fault injection for a run. The zero value is a
// benign run with all oracles active.
type FaultPlan struct {
	// AllocFailEvery makes every Nth physical-page allocation fail after
	// setup (0 disables). Backends hit the failures at different internal
	// allocation counts, so the differential oracle is suspended; the
	// resource, security, and no-crash oracles stay active — error paths
	// must not leak or widen authority.
	AllocFailEvery int
	// StallCycles adds hardware latency to every IOTLB invalidation
	// (a stalled invalidation queue). Windows widen but invariants hold.
	StallCycles uint64
	// SkipInval is the deliberately reintroduced bug: the strict backend
	// skips synchronous IOTLB invalidation on unmap, opening a
	// deferred-style window the security oracle must catch.
	SkipInval bool
	// InvTimeout arms the invalidation queue's ITE model on every
	// backend: waits past this many cycles surface iommu.ErrInvTimeout
	// and run the retry/recover pipeline. Combined with StallCycles this
	// exercises recovery under a stalled queue; invariants must hold
	// because recovery over-invalidates (never under-invalidates).
	InvTimeout uint64
	// SpillNoInval is the second reintroduced bug (-inject-bug
	// spillnoinval): the copy-degraded backend's spill unmaps skip the
	// strict invalidation, opening a stale window on the spill path that
	// the security oracle must catch.
	SpillNoInval bool
}

// profile is the per-backend security expectation: which paper-predicted
// windows are allowed, and which MUST be positively observed so the
// oracle cannot pass vacuously.
type profile struct {
	// windowAllowed: a stale-IOVA device write may reach the OS buffer
	// before invalidation completes (deferred designs).
	windowAllowed bool
	// windowRequired: with eligible probes present, at least one must
	// observe the window (it is a prediction, not just a tolerance).
	windowRequired bool
	// subPageAllowed: a device may read kmalloc data co-located on a
	// mapped page (zero-copy page-granular designs).
	subPageAllowed bool
	// subPageRequired: with eligible probes present, at least one leak
	// must be observed (a prediction, not just a tolerance). Allowed but
	// not required fits backends where only SOME mappings are
	// page-granular — copy-degraded's spill path — so whether a given
	// probe leaks depends on which path served its mapping.
	subPageRequired bool
	// arbitrary: device access to never-mapped memory succeeds (swiotlb
	// runs in passthrough); also required when attempted.
	arbitrary bool
}

func profileFor(backend string) profile {
	switch backend {
	case "strict", "identity+":
		return profile{subPageAllowed: true, subPageRequired: true}
	case "defer", "identity-", "selfinval":
		return profile{windowAllowed: true, windowRequired: true,
			subPageAllowed: true, subPageRequired: true}
	case "swiotlb":
		// Stale and sub-page probes land in the bounce arena (contained,
		// ironically), but arbitrary physical access always succeeds.
		return profile{arbitrary: true}
	case "copy", "copy-hybrid":
		return profile{}
	case "copy-degraded":
		// The starved pool spills most mappings to the strict page-
		// granular slow path: sub-page leaks become possible (allowed,
		// not required — pool-served mappings still contain them), but
		// the stale window stays closed (spill unmaps invalidate
		// strictly) and data results stay byte-identical to copy.
		return profile{subPageAllowed: true}
	}
	return profile{}
}

// machine is one simulated host running one backend.
type machine struct {
	eng    *sim.Engine
	mem    *mem.Memory
	u      *iommu.IOMMU
	env    *dmaapi.Env
	mapper dmaapi.Mapper
	k      *mem.Kmalloc

	bufs map[int]mem.Buf // op index -> preallocated OS buffer
	sibs map[int]mem.Buf // op index -> co-located sibling holding a secret

	secretPage mem.Phys // never-mapped page for arbitrary probes
}

const fuzzDev = iommu.DeviceID(1)

func newMachine(backend string, tr *Trace, plan FaultPlan) (*machine, error) {
	eng := sim.NewEngine()
	m := mem.New(2)
	u := iommu.New(eng, m, cycles.Default())
	u.Queue.StallCycles = plan.StallCycles
	u.Queue.Timeout = plan.InvTimeout
	env := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: cycles.Default(), Dev: fuzzDev, Cores: 2}

	var mapper dmaapi.Mapper
	var err error
	switch backend {
	case "strict":
		lm := dmaapi.NewLinux(env, false)
		lm.SkipInval = plan.SkipInval
		mapper = lm
	case "defer":
		mapper = dmaapi.NewLinux(env, true)
	case "identity+":
		mapper = dmaapi.NewIdentity(env, false)
	case "identity-":
		mapper = dmaapi.NewIdentity(env, true)
	case "selfinval":
		mapper = dmaapi.NewSelfInval(env, cycles.FromMillis(selfInvalTTL))
	case "swiotlb":
		mapper = dmaapi.NewSWIOTLB(env)
	case "copy":
		// The healthy reference for the copy strategy: the degradation
		// ladder is disabled so injected allocation failures keep their
		// historical hard-failure semantics (the ladder would otherwise
		// absorb them and blur the profile).
		mapper, err = core.NewShadowMapper(env,
			core.WithDegrade(core.DegradeConfig{Disable: true}))
	case "copy-hybrid":
		// A lowered max class (16 KiB) so the generator's large buffers
		// exercise the huge-buffer hybrid path.
		mapper, err = core.NewShadowMapper(env, core.WithPoolConfig(shadow.Config{
			SizeClasses:  []int{4096, 16384},
			MaxPerClass:  16384,
			Cores:        env.Cores,
			Domains:      m.Domains(),
			DomainOfCore: env.DomainOfCore,
		}), core.WithDegrade(core.DegradeConfig{Disable: true}))
	case "copy-degraded":
		// A deterministically starved pool — 4 metadata slots per
		// (domain, class) and no fallback — so nearly every Map runs the
		// degradation ladder and is served by the strict spill path.
		// Results must stay byte-identical to the healthy copy backend;
		// only the costs and the sub-page granularity differ.
		mapper, err = core.NewShadowMapper(env, core.WithPoolConfig(shadow.Config{
			SizeClasses:     []int{4096, 65536},
			MaxPerClass:     4,
			Cores:           env.Cores,
			Domains:         m.Domains(),
			DomainOfCore:    env.DomainOfCore,
			DisableFallback: true,
		}), core.WithDegrade(core.DegradeConfig{
			MaxRetries:     1,
			RetryBackoff:   1024,
			SkipSpillInval: plan.SpillNoInval,
		}))
	default:
		return nil, fmt.Errorf("dmafuzz: unknown backend %q", backend)
	}
	if err != nil {
		return nil, err
	}

	mc := &machine{
		eng: eng, mem: m, u: u, env: env, mapper: mapper,
		k:    mem.NewKmalloc(m, nil),
		bufs: make(map[int]mem.Buf),
		sibs: make(map[int]mem.Buf),
	}

	// Pre-allocate every OpMap buffer (and sibling) in op order, before
	// any backend-dependent activity: the slab layout — and therefore
	// every page-co-location decision the probes make — is identical
	// across backends.
	for i, op := range tr.Ops {
		if op.Kind != OpMap || op.Size <= 0 || op.Size > maxMapSize {
			continue
		}
		buf, err := mc.k.Alloc(op.Dom%m.Domains(), op.Size)
		if err != nil {
			return nil, fmt.Errorf("dmafuzz: prealloc op %d: %w", i, err)
		}
		mc.bufs[i] = buf
		if op.Sib {
			// Same requested size → same kmalloc class → same slab, so
			// back-to-back allocations land on a shared page (the sub-page
			// leak the paper predicts for byte-granular sharing).
			sib, err := mc.k.Alloc(op.Dom%m.Domains(), op.Size)
			if err != nil {
				return nil, fmt.Errorf("dmafuzz: prealloc sibling op %d: %w", i, err)
			}
			if err := m.Write(sib.Addr, secretFor(i)); err != nil {
				return nil, err
			}
			mc.sibs[i] = sib
		}
	}

	// The arbitrary-probe target: an allocated, secret-bearing page no
	// backend ever maps.
	pg, err := m.AllocPages(0, 1)
	if err != nil {
		return nil, err
	}
	mc.secretPage = pg
	if err := m.Write(pg, secretFor(-1)); err != nil {
		return nil, err
	}

	// Fault injection starts only now: setup must be identical across
	// backends.
	if plan.AllocFailEvery > 0 {
		n := 0
		m.AllocFail = func(domain, pages int) bool {
			n++
			return n%plan.AllocFailEvery == 0
		}
	}
	return mc, nil
}

// maxMapSize bounds generated mapping sizes: the largest size every
// backend can serve (the swiotlb and copy pools top out at 64 KiB slots).
const maxMapSize = 65536

// secretFor returns the 8-byte planted secret for op i (i = -1 for the
// arbitrary-probe page).
func secretFor(i int) []byte {
	s := make([]byte, 8)
	for j := range s {
		s[j] = byte(0xA5 ^ (i+2)*31 ^ j*47)
	}
	return s
}

// fillPattern deterministically fills b with the op's base pattern.
func fillPattern(b []byte, op int) {
	for i := range b {
		b[i] = byte(op*31 + i*7 + 11)
	}
}

// devPayload returns the byte the device writes at index i of op's burst.
func devPayload(op, i int) byte { return byte(op*131 + i*17 + 5) }

// cpuPayload returns the byte the CPU writes at index i of op's burst.
func cpuPayload(op, i int) byte { return byte(op*89 + i*13 + 3) }
