// Package dmafuzz is a differential DMA fuzzing harness: it generates
// seeded, deterministic random DMA workloads (map/unmap, device and CPU
// accesses, partial-page and overlapping and zero-length mappings,
// malicious device probes) and runs the same trace through every DMA-API
// protection backend, checking three oracle families:
//
//   - differential: benign operations must produce identical OS-visible
//     outcomes under every backend (the transparency property, paper §5.1);
//   - security-invariant: device probes must never exceed granted
//     authority except inside paper-predicted windows (deferred
//     invalidation, sub-page slack), and those windows must be positively
//     observed where the paper predicts them — an oracle that cannot pass
//     vacuously;
//   - resource: mapper accounting, IOVA allocators, and memory frames
//     must return to baseline after teardown (run twice, compare the
//     steady states).
//
// Traces are replayable (JSON), minimizable (ddmin), and feed the native
// go-fuzz entry points in internal/iommu and internal/mem.
package dmafuzz

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// OpKind enumerates trace operations. Ops reference fixed slots; an op
// whose slot is in the wrong state is recorded as a deterministic skip,
// so every subsequence of a trace is itself a valid trace — the property
// the minimizer relies on.
type OpKind uint8

const (
	// OpMap maps a fresh kmalloc buffer (Size, Dir, Dom, Sib) into Slot.
	OpMap OpKind = iota + 1
	// OpMapOverlap maps the SAME buffer as live ToDevice slot Src into
	// Slot (overlapping mapping of one buffer).
	OpMapOverlap
	// OpMapZero attempts a zero-length mapping, which every backend must
	// reject identically.
	OpMapZero
	// OpUnmap unmaps Slot.
	OpUnmap
	// OpDevWrite is a benign device write of Len bytes at Off into Slot
	// (FromDevice/Bidirectional only).
	OpDevWrite
	// OpDevRead is a benign device read of Len bytes at Off from Slot
	// (ToDevice/Bidirectional only).
	OpDevRead
	// OpSyncCPU is dma_sync_single_for_cpu on Slot.
	OpSyncCPU
	// OpCPUWriteSync writes Len CPU bytes at Off then syncs for device
	// (ToDevice/Bidirectional, unshared buffers only).
	OpCPUWriteSync
	// OpProbeStale is a malicious device write through Slot's most
	// recently unmapped IOVA (the deferred-invalidation window probe).
	OpProbeStale
	// OpProbeSubPage is a malicious device read of a co-located kmalloc
	// sibling through Slot's live mapping (the sub-page slack probe).
	OpProbeSubPage
	// OpProbeArbitrary is a malicious device read of a never-mapped
	// secret page.
	OpProbeArbitrary
	// OpCoherentAlloc allocates a coherent buffer of Size in coherent
	// slot Slot and verifies device/CPU sharing.
	OpCoherentAlloc
	// OpCoherentFree frees coherent slot Slot.
	OpCoherentFree
	// OpQuiesce drains deferred invalidations.
	OpQuiesce
)

var opNames = map[OpKind]string{
	OpMap: "map", OpMapOverlap: "map-overlap", OpMapZero: "map-zero",
	OpUnmap: "unmap", OpDevWrite: "dev-write", OpDevRead: "dev-read",
	OpSyncCPU: "sync-cpu", OpCPUWriteSync: "cpu-write-sync",
	OpProbeStale: "probe-stale", OpProbeSubPage: "probe-subpage",
	OpProbeArbitrary: "probe-arbitrary", OpCoherentAlloc: "coherent-alloc",
	OpCoherentFree: "coherent-free", OpQuiesce: "quiesce",
}

func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one trace operation. Field use depends on Kind; unused fields are
// zero so the JSON form stays compact.
type Op struct {
	Kind OpKind `json:"k"`
	Slot int    `json:"s,omitempty"`
	Src  int    `json:"src,omitempty"`
	Size int    `json:"n,omitempty"`
	Off  int    `json:"off,omitempty"`
	Len  int    `json:"len,omitempty"`
	Dir  uint8  `json:"d,omitempty"`
	Dom  int    `json:"dom,omitempty"`
	Sib  bool   `json:"sib,omitempty"`
}

// Trace is a replayable workload: the seed that generated it (recorded for
// provenance; replay does not re-derive ops from it) plus the op list.
type Trace struct {
	Seed int64 `json:"seed"`
	Ops  []Op  `json:"ops"`
}

// MarshalJSON-able repro files use the plain struct; helpers below give a
// compact binary form for fuzz corpora.

const traceMagic = "DMFZ1"

// opWire is the fixed binary size of one encoded op.
const opWire = 1 + 1 + 1 + 1 + 1 + 1 + 4 + 4 + 4

// Encode packs the trace into the compact binary corpus format used to
// seed the native go-fuzz targets.
func (t *Trace) Encode() []byte {
	b := make([]byte, 0, len(traceMagic)+8+len(t.Ops)*opWire)
	b = append(b, traceMagic...)
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], uint64(t.Seed))
	b = append(b, s[:]...)
	for _, op := range t.Ops {
		var w [opWire]byte
		w[0] = byte(op.Kind)
		w[1] = byte(op.Slot)
		w[2] = byte(op.Src)
		w[3] = op.Dir
		w[4] = byte(op.Dom)
		if op.Sib {
			w[5] = 1
		}
		binary.LittleEndian.PutUint32(w[6:], uint32(op.Size))
		binary.LittleEndian.PutUint32(w[10:], uint32(op.Off))
		binary.LittleEndian.PutUint32(w[14:], uint32(op.Len))
		b = append(b, w[:]...)
	}
	return b
}

// DecodeTrace parses the binary corpus format. Trailing partial ops are
// ignored (fuzzers mutate freely); an unknown magic is an error.
func DecodeTrace(b []byte) (*Trace, error) {
	if len(b) < len(traceMagic)+8 || string(b[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("dmafuzz: bad trace header")
	}
	b = b[len(traceMagic):]
	t := &Trace{Seed: int64(binary.LittleEndian.Uint64(b[:8]))}
	b = b[8:]
	for len(b) >= opWire {
		w := b[:opWire]
		b = b[opWire:]
		t.Ops = append(t.Ops, Op{
			Kind: OpKind(w[0]),
			Slot: int(w[1]),
			Src:  int(w[2]),
			Dir:  w[3],
			Dom:  int(w[4]),
			Sib:  w[5] != 0,
			Size: int(int32(binary.LittleEndian.Uint32(w[6:]))),
			Off:  int(int32(binary.LittleEndian.Uint32(w[10:]))),
			Len:  int(int32(binary.LittleEndian.Uint32(w[14:]))),
		})
	}
	return t, nil
}

// MarshalRepro renders the trace as an indented, byte-deterministic JSON
// repro file.
func (t *Trace) MarshalRepro() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// UnmarshalRepro parses a repro file produced by MarshalRepro.
func UnmarshalRepro(b []byte) (*Trace, error) {
	t := &Trace{}
	if err := json.Unmarshal(b, t); err != nil {
		return nil, fmt.Errorf("dmafuzz: bad repro file: %w", err)
	}
	return t, nil
}
