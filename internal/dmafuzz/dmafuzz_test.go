package dmafuzz

import (
	"bytes"
	"testing"
)

// TestBenignTracesPassAllOracles is the harness's core claim: for benign
// generated traces, every backend passes the differential, security, and
// resource oracles — and the security oracle's positive-observation
// requirements are actually exercised, not vacuously satisfied.
func TestBenignTracesPassAllOracles(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rep, err := Run(Config{Seed: seed, NumOps: 150})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d failed:\n%v", seed, rep.Failures())
		}
		for _, br := range rep.Backends {
			if br.Security.StaleProbes == 0 {
				t.Errorf("seed %d/%s: no stale probes ran — generator regressed", seed, br.Backend)
			}
			if br.Security.SubPageEligible == 0 {
				t.Errorf("seed %d/%s: no eligible sub-page probes", seed, br.Backend)
			}
			if br.Security.ArbitraryProbes == 0 || br.Security.ProberReads == 0 {
				t.Errorf("seed %d/%s: arbitrary probes missing", seed, br.Backend)
			}
			if br.Security.FinalProbes == 0 {
				t.Errorf("seed %d/%s: no teardown containment probes ran", seed, br.Backend)
			}
		}
	}
}

// TestRunIsDeterministic: two runs of the same config must produce
// byte-identical JSON reports (the acceptance bar for replayability).
func TestRunIsDeterministic(t *testing.T) {
	var out [2][]byte
	for i := range out {
		rep, err := Run(Config{Seed: 7, NumOps: 120})
		if err != nil {
			t.Fatal(err)
		}
		j, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = j
	}
	if !bytes.Equal(out[0], out[1]) {
		t.Fatal("two runs of the same seed produced different JSON reports")
	}
}

// TestWindowsObservedWherePredicted pins the paper's vulnerability-window
// table: deferred designs exhibit the stale-IOVA window, strict designs
// don't, zero-copy designs leak sub-page siblings, copying designs leak
// nothing, and swiotlb grants arbitrary access.
func TestWindowsObservedWherePredicted(t *testing.T) {
	rep, err := Run(Config{Seed: 2, NumOps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("benign run failed:\n%v", rep.Failures())
	}
	bySec := map[string]SecuritySummary{}
	for _, br := range rep.Backends {
		bySec[br.Backend] = br.Security
	}
	for _, b := range []string{"defer", "identity-", "selfinval"} {
		if bySec[b].StaleObserved == 0 {
			t.Errorf("%s: deferred window not observed", b)
		}
	}
	for _, b := range []string{"strict", "identity+", "copy", "copy-hybrid", "swiotlb"} {
		if bySec[b].StaleObserved != 0 {
			t.Errorf("%s: unexpected stale window (%d)", b, bySec[b].StaleObserved)
		}
	}
	for _, b := range []string{"strict", "defer", "identity+", "identity-", "selfinval"} {
		if bySec[b].SubPageObserved == 0 {
			t.Errorf("%s: sub-page leak not observed", b)
		}
	}
	for _, b := range []string{"copy", "copy-hybrid", "swiotlb"} {
		if bySec[b].SubPageObserved != 0 {
			t.Errorf("%s: unexpected sub-page leak", b)
		}
	}
	if bySec["swiotlb"].ProberLeaks == 0 && bySec["swiotlb"].ArbitraryLeaks == 0 {
		t.Error("swiotlb: arbitrary access not observed")
	}
}

// TestInjectedBugCaughtAndMinimized reintroduces the deferred-window bug
// into the strict backend (unmap skips IOTLB invalidation), and requires
// the harness to (a) catch it and (b) minimize the failing trace to a
// replayable repro of at most 10 ops.
func TestInjectedBugCaughtAndMinimized(t *testing.T) {
	plan := FaultPlan{SkipInval: true}
	backends := []string{"strict"}
	tr := Generate(1, 200)
	rep, err := RunTrace(tr, backends, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatal("security oracle missed the reintroduced strict-unmap bug")
	}

	min, runs, err := Minimize(tr, backends, plan)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("minimized %d -> %d ops in %d oracle runs", len(tr.Ops), len(min.Ops), runs)
	if len(min.Ops) > 10 {
		t.Fatalf("minimized trace has %d ops, want <= 10", len(min.Ops))
	}

	// The minimized trace must still fail, and must survive a repro-file
	// round trip byte-for-byte.
	blob, err := min.MarshalRepro()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRepro(blob)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := RunTrace(back, backends, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Failed() {
		t.Fatal("replayed minimized trace no longer fails")
	}

	// The fixed code must pass the very same trace.
	rep3, err := RunTrace(back, backends, FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Failed() {
		t.Fatalf("minimized trace fails even without the bug:\n%v", rep3.Failures())
	}
}

// TestFaultInjectionInvariantsHold: with allocation failures injected,
// error paths must neither leak resources nor widen device authority.
func TestFaultInjectionAllocFail(t *testing.T) {
	rep, err := Run(Config{Seed: 5, NumOps: 150, Plan: FaultPlan{AllocFailEvery: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("alloc-fail run violated invariants:\n%v", rep.Failures())
	}
}

// TestFaultInjectionInvQueueStall: a stalled invalidation queue widens
// windows but must not break any invariant (strict still blocks until
// completion; deferred windows stay windows).
func TestFaultInjectionInvQueueStall(t *testing.T) {
	rep, err := Run(Config{Seed: 3, NumOps: 120, Plan: FaultPlan{StallCycles: 50000}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("stall run violated invariants:\n%v", rep.Failures())
	}
}

// TestTraceCodecRoundTrip covers both the binary corpus format and the
// JSON repro format.
func TestTraceCodecRoundTrip(t *testing.T) {
	tr := Generate(11, 64)
	dec, err := DecodeTrace(tr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if dec.Seed != tr.Seed || len(dec.Ops) != len(tr.Ops) {
		t.Fatalf("binary round trip mangled trace: %d/%d ops", len(dec.Ops), len(tr.Ops))
	}
	for i := range tr.Ops {
		if tr.Ops[i] != dec.Ops[i] {
			t.Fatalf("op %d mangled: %+v vs %+v", i, tr.Ops[i], dec.Ops[i])
		}
	}
	if _, err := DecodeTrace([]byte("junk")); err == nil {
		t.Fatal("junk accepted as trace")
	}
	blob, err := tr.MarshalRepro()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalRepro(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ops) != len(tr.Ops) {
		t.Fatal("JSON round trip lost ops")
	}
}

// TestGenerateDeterministic: the generator is a pure function of
// (seed, n).
func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(42, 300), Generate(42, 300)
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("lengths differ")
	}
	for i := range a.Ops {
		if a.Ops[i] != b.Ops[i] {
			t.Fatalf("op %d differs", i)
		}
	}
	if len(a.Ops) != 300 {
		t.Fatalf("got %d ops, want 300", len(a.Ops))
	}
}
