package dmafuzz

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"repro/internal/dmaapi"
)

// OpResult records the OS-visible outcome of one trace op under one
// backend. Benign-op fields (Err, Fault, Done, Sum) feed the differential
// oracle; probe fields (Window, Leak) feed the security oracle.
type OpResult struct {
	Index   int    `json:"i"`
	Kind    string `json:"k"`
	Skipped bool   `json:"skip,omitempty"`
	Err     bool   `json:"err,omitempty"`
	Fault   bool   `json:"fault,omitempty"`
	Done    int    `json:"done,omitempty"`
	Sum     string `json:"sum,omitempty"`
	Window  bool   `json:"win,omitempty"`
	Leak    bool   `json:"leak,omitempty"`
}

// probeKind reports whether the op's outcome is expected to differ across
// backends (and is therefore judged by the security oracle, not the
// differential one).
func probeKind(k OpKind) bool {
	return k == OpProbeStale || k == OpProbeSubPage || k == OpProbeArbitrary
}

// comparable renders the fields the differential oracle compares across
// backends for this op.
func (r OpResult) comparable(k OpKind) string {
	if probeKind(k) {
		return fmt.Sprintf("skip=%v", r.Skipped)
	}
	return fmt.Sprintf("skip=%v err=%v fault=%v done=%d sum=%s",
		r.Skipped, r.Err, r.Fault, r.Done, r.Sum)
}

// SecuritySummary aggregates probe outcomes across both passes of a run.
// "Eligible" counters exist so positive-observation requirements are only
// enforced when the trace actually presented the opportunity.
type SecuritySummary struct {
	StaleProbes     int `json:"staleProbes"`
	StaleEligible   int `json:"staleEligible"`
	StaleObserved   int `json:"staleObserved"`
	SubPageEligible int `json:"subpageEligible"`
	SubPageObserved int `json:"subpageObserved"`
	ArbitraryProbes int `json:"arbitraryProbes"`
	ArbitraryLeaks  int `json:"arbitraryLeaks"`
	ProberReads     int `json:"proberReads"`
	ProberLeaks     int `json:"proberLeaks"`
	FinalProbes     int `json:"finalProbes"`
	FinalObserved   int `json:"finalObserved"`
}

// ResourceSummary snapshots resource state after each pass's teardown.
// The trace body runs twice on the same machine: pass 1 warms permanent
// caches, so pass 2 must end byte-identical — anything monotonic is a
// leak.
type ResourceSummary struct {
	AccountingZero1 bool              `json:"accountingZero1"`
	AccountingZero2 bool              `json:"accountingZero2"`
	Accounting2     dmaapi.Accounting `json:"accounting2"`
	InUse1          []uint64          `json:"inUse1"`
	InUse2          []uint64          `json:"inUse2"`
}

// BackendResult is one backend's complete run outcome.
type BackendResult struct {
	Backend    string          `json:"backend"`
	Executed   int             `json:"executed"`
	SkippedOps int             `json:"skipped"`
	Errors     int             `json:"errors"`
	Security   SecuritySummary `json:"security"`
	Resource   ResourceSummary `json:"resource"`
	Violations []string        `json:"violations"`

	// OpResults back the differential oracle; they are omitted from the
	// JSON report (the trace file is the replay artifact).
	OpResults []OpResult `json:"-"`
}

func (b *BackendResult) violatef(format string, args ...any) {
	b.Violations = append(b.Violations, fmt.Sprintf(format, args...))
}

// Report is the machine-readable result of running one trace through a
// set of backends. Marshaling is byte-deterministic: no timestamps, no
// map iteration, fixed field order.
type Report struct {
	Seed     int64            `json:"seed"`
	Ops      int              `json:"ops"`
	Plan     FaultPlan        `json:"plan"`
	Backends []*BackendResult `json:"backends"`
	Diffs    []string         `json:"diffs"`
	Pass     bool             `json:"pass"`
}

// Failed reports whether any oracle flagged this run.
func (r *Report) Failed() bool { return !r.Pass }

// Failures flattens every violation and differential mismatch.
func (r *Report) Failures() []string {
	var out []string
	for _, b := range r.Backends {
		for _, v := range b.Violations {
			out = append(out, b.Backend+": "+v)
		}
	}
	out = append(out, r.Diffs...)
	return out
}

// JSON renders the deterministic report.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// checksum is the FNV-1a digest used for OS-visible content records.
func checksum(parts ...[]byte) string {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write(p)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
