package dmafuzz

import (
	"bytes"

	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Config parameterizes a fuzzing run.
type Config struct {
	Seed     int64
	NumOps   int
	Backends []string // nil for Backends
	Plan     FaultPlan
}

// Run generates a trace from cfg.Seed and runs it through every backend,
// returning the oracle report.
func Run(cfg Config) (*Report, error) {
	return RunTrace(Generate(cfg.Seed, cfg.NumOps), cfg.Backends, cfg.Plan)
}

// RunTrace runs an existing (e.g. replayed or minimized) trace through the
// given backends and applies all three oracle families.
func RunTrace(tr *Trace, backends []string, plan FaultPlan) (*Report, error) {
	if backends == nil {
		backends = Backends
	}
	rep := &Report{Seed: tr.Seed, Ops: len(tr.Ops), Plan: plan}
	for _, name := range backends {
		br, err := runBackend(name, tr, plan)
		if err != nil {
			return nil, err
		}
		applySecurityOracle(br, plan)
		applyResourceOracle(br, plan)
		rep.Backends = append(rep.Backends, br)
	}
	if plan.AllocFailEvery == 0 {
		rep.Diffs = applyDifferentialOracle(tr, rep.Backends)
	}
	rep.Pass = len(rep.Diffs) == 0
	for _, b := range rep.Backends {
		if len(b.Violations) > 0 {
			rep.Pass = false
		}
	}
	return rep, nil
}

// extent is a half-open device-written byte range within a mapping.
type extent struct{ off, end int }

// execSlot is one streaming-mapping slot's runtime state.
type execSlot struct {
	live      bool
	opIdx     int // OpMap index that created the mapping (buffer identity)
	addr      iommu.IOVA
	buf       mem.Buf
	dir       dmaapi.Dir
	devMirror []byte   // model of device-visible content
	osMirror  []byte   // model of CPU-visible content (ToDevice checks)
	extents   []extent // device-written ranges (FromDevice definedness)
	devWrote  bool

	// Former mapping, for stale-window probes.
	hasFormer bool
	fAddr     iommu.IOVA
	fBuf      mem.Buf
}

type cohSlot struct {
	live bool
	addr iommu.IOVA
	buf  mem.Buf
}

// execState is the per-pass executor state for one backend machine.
type execState struct {
	mc     *machine
	plan   FaultPlan
	br     *BackendResult
	slots  [NumSlots]execSlot
	coh    [NumCoherentSlots]cohSlot
	shared map[int]int // OpMap index -> live mappings of that buffer
}

func newExecState(mc *machine, plan FaultPlan, br *BackendResult) *execState {
	return &execState{mc: mc, plan: plan, br: br, shared: make(map[int]int)}
}

// actorPark is the polling interval of paused/stopping background actors.
var actorPark = cycles.FromMicros(20)

// actors coordinates the concurrent device and CPU procs with the driver:
// the driver pauses them around resource snapshots (they must hold
// nothing) and stops them at the end of the run.
type actors struct {
	stop   bool
	paused bool
	idle   int
	total  int
}

func (a *actors) loop(p *sim.Proc, step func(*sim.Proc)) {
	idleMarked := false
	setIdle := func(v bool) {
		if v != idleMarked {
			if v {
				a.idle++
			} else {
				a.idle--
			}
			idleMarked = v
		}
	}
	for {
		if a.stop {
			setIdle(true)
			return
		}
		if a.paused {
			setIdle(true)
			p.Sleep(actorPark)
			continue
		}
		setIdle(false)
		step(p)
		p.Sleep(cycles.FromMicros(200))
	}
}

// barrier waits until every actor is parked idle.
func (a *actors) barrier(p *sim.Proc) {
	for a.idle < a.total {
		p.Sleep(actorPark)
	}
}

func runBackend(backend string, tr *Trace, plan FaultPlan) (*BackendResult, error) {
	mc, err := newMachine(backend, tr, plan)
	if err != nil {
		return nil, err
	}
	br := &BackendResult{Backend: backend, Violations: []string{}}
	act := &actors{total: 2}

	// Concurrent device actor: a read-only prober hammering the
	// never-mapped secret page throughout the run.
	probe := make([]byte, 8)
	mc.eng.Spawn("prober", 1, 0, func(p *sim.Proc) {
		act.loop(p, func(p *sim.Proc) {
			res := mc.u.DMARead(fuzzDev, iommu.IOVA(mc.secretPage), probe)
			br.Security.ProberReads++
			if res.Fault == nil && bytes.Equal(probe, secretFor(-1)) {
				br.Security.ProberLeaks++
			}
		})
	})
	// Concurrent CPU actor: coherent ring churn on the other core,
	// contending on the mapper's locks and allocators.
	mc.eng.Spawn("cpu-actor", 1, 0, func(p *sim.Proc) {
		ring := []byte("ring-doorbell")
		got := make([]byte, len(ring))
		act.loop(p, func(p *sim.Proc) {
			addr, buf, err := mc.mapper.AllocCoherent(p, 4096)
			if err != nil {
				if plan.AllocFailEvery == 0 {
					br.violatef("cpu-actor: coherent alloc failed: %v", err)
				}
				return
			}
			if res := mc.u.DMAWrite(fuzzDev, addr, ring); res.Fault != nil {
				br.violatef("cpu-actor: coherent device write faulted: %v", res.Fault)
			} else if err := mc.mem.Read(buf.Addr, got); err != nil || !bytes.Equal(got, ring) {
				br.violatef("cpu-actor: coherent buffer not shared")
			}
			if err := mc.mapper.FreeCoherent(p, addr, buf); err != nil {
				br.violatef("cpu-actor: coherent free failed: %v", err)
			}
		})
	})

	mc.eng.Spawn("driver", 0, 0, func(p *sim.Proc) {
		for pass := 1; pass <= 2; pass++ {
			st := newExecState(mc, plan, br)
			for i, op := range tr.Ops {
				r := st.exec(p, i, op)
				if pass == 1 {
					br.OpResults = append(br.OpResults, r)
					if r.Skipped {
						br.SkippedOps++
					} else {
						br.Executed++
					}
					if r.Err {
						br.Errors++
					}
				}
				p.Work(cycles.TagOther, 500)
			}
			st.teardown(p)
			act.paused = true
			act.barrier(p)
			acct := mc.mapper.Accounting()
			inuse := []uint64{mc.mem.InUseBytes(0), mc.mem.InUseBytes(1)}
			if pass == 1 {
				br.Resource.AccountingZero1 = acct.Zero()
				br.Resource.InUse1 = inuse
				act.paused = false
			} else {
				br.Resource.AccountingZero2 = acct.Zero()
				br.Resource.Accounting2 = acct
				br.Resource.InUse2 = inuse
				// Epilogue: after every window has provably expired, no
				// formerly used IOVA may reach an OS buffer — on ANY
				// backend (swiotlb's stale IOVAs point at its bounce
				// arena, so even it passes; its insecurity is caught by
				// the arbitrary-access probes instead).
				p.Sleep(cycles.FromMillis(teardownSettle))
				for s := range st.slots {
					sl := &st.slots[s]
					if !sl.hasFormer {
						continue
					}
					br.Security.FinalProbes++
					if w, _, _ := st.probeStaleWrite(sl.fAddr, sl.fBuf); w {
						br.Security.FinalObserved++
					}
				}
				act.stop = true
				act.barrier(p)
			}
		}
	})
	mc.eng.Run(1 << 50)
	mc.eng.Stop()
	return br, nil
}

func (st *execState) exec(p *sim.Proc, i int, op Op) OpResult {
	r := OpResult{Index: i, Kind: op.Kind.String()}
	mc, br := st.mc, st.br
	benign := st.plan.AllocFailEvery == 0
	skip := func() OpResult { r.Skipped = true; return r }

	switch op.Kind {
	case OpMap:
		sl := st.slot(op.Slot)
		buf, ok := mc.bufs[i]
		dir := dmaapi.Dir(op.Dir)
		if sl == nil || sl.live || !ok || dir < dmaapi.ToDevice || dir > dmaapi.Bidirectional {
			return skip()
		}
		pat := make([]byte, buf.Size)
		fillPattern(pat, i)
		if err := mc.mem.Write(buf.Addr, pat); err != nil {
			br.violatef("op %d: cannot initialize buffer: %v", i, err)
			return r
		}
		addr, err := mc.mapper.Map(p, buf, dir)
		if err != nil {
			r.Err = true
			if benign {
				br.violatef("op %d: benign map of %d bytes failed: %v", i, buf.Size, err)
			}
			return r
		}
		*sl = execSlot{live: true, opIdx: i, addr: addr, buf: buf, dir: dir,
			osMirror: pat, devMirror: make([]byte, buf.Size)}
		if dir != dmaapi.FromDevice {
			copy(sl.devMirror, pat)
		}
		st.shared[i]++

	case OpMapOverlap:
		sl, src := st.slot(op.Slot), st.slot(op.Src)
		if sl == nil || src == nil || sl.live || !src.live || src.dir != dmaapi.ToDevice {
			return skip()
		}
		snap, err := mc.mem.Snapshot(src.buf)
		if err != nil {
			br.violatef("op %d: snapshot: %v", i, err)
			return r
		}
		addr, err := mc.mapper.Map(p, src.buf, dmaapi.ToDevice)
		if err != nil {
			r.Err = true
			if benign {
				br.violatef("op %d: benign overlapping map failed: %v", i, err)
			}
			return r
		}
		*sl = execSlot{live: true, opIdx: src.opIdx, addr: addr, buf: src.buf,
			dir: dmaapi.ToDevice, osMirror: snap, devMirror: append([]byte{}, snap...)}
		st.shared[src.opIdx]++

	case OpMapZero:
		_, err := mc.mapper.Map(p, mem.Buf{}, dmaapi.Bidirectional)
		r.Err = err != nil
		if err == nil {
			br.violatef("op %d: zero-length map accepted", i)
		}

	case OpUnmap:
		sl := st.slot(op.Slot)
		if sl == nil || !sl.live {
			return skip()
		}
		err := mc.mapper.Unmap(p, sl.addr, sl.buf.Size, sl.dir)
		if err != nil {
			r.Err = true
			br.violatef("op %d: unmap failed: %v", i, err)
		}
		snap, serr := mc.mem.Snapshot(sl.buf)
		if serr != nil {
			br.violatef("op %d: snapshot: %v", i, serr)
			return r
		}
		r.Sum = st.checkVisible(i, "unmap", sl, snap)
		st.shared[sl.opIdx]--
		*sl = execSlot{hasFormer: true, fAddr: sl.addr, fBuf: sl.buf}

	case OpDevWrite:
		sl := st.slot(op.Slot)
		if sl == nil || !sl.live || sl.dir == dmaapi.ToDevice ||
			op.Off < 0 || op.Len <= 0 || op.Off+op.Len > sl.buf.Size {
			return skip()
		}
		payload := make([]byte, op.Len)
		for j := range payload {
			payload[j] = devPayload(i, j)
		}
		res := mc.u.DMAWrite(fuzzDev, sl.addr+iommu.IOVA(op.Off), payload)
		r.Done, r.Fault = res.Done, res.Fault != nil
		if res.Fault != nil {
			br.violatef("op %d: benign device write faulted: %v", i, res.Fault)
			return r
		}
		copy(sl.devMirror[op.Off:], payload)
		sl.extents = append(sl.extents, extent{op.Off, op.Off + op.Len})
		sl.devWrote = true

	case OpDevRead:
		sl := st.slot(op.Slot)
		if sl == nil || !sl.live || sl.dir == dmaapi.FromDevice ||
			op.Off < 0 || op.Len <= 0 || op.Off+op.Len > sl.buf.Size {
			return skip()
		}
		got := make([]byte, op.Len)
		res := mc.u.DMARead(fuzzDev, sl.addr+iommu.IOVA(op.Off), got)
		r.Done, r.Fault = res.Done, res.Fault != nil
		if res.Fault != nil {
			br.violatef("op %d: benign device read faulted: %v", i, res.Fault)
			return r
		}
		if !bytes.Equal(got, sl.devMirror[op.Off:op.Off+op.Len]) {
			br.violatef("op %d: device read wrong data (slot %d, %d@%d)", i, op.Slot, op.Len, op.Off)
		}
		r.Sum = checksum(got)

	case OpSyncCPU:
		sl := st.slot(op.Slot)
		if sl == nil || !sl.live || sl.dir == dmaapi.ToDevice {
			return skip()
		}
		if err := mc.mapper.SyncForCPU(p, sl.addr, sl.buf.Size, sl.dir); err != nil {
			r.Err = true
			br.violatef("op %d: sync_for_cpu failed: %v", i, err)
			return r
		}
		snap, serr := mc.mem.Snapshot(sl.buf)
		if serr != nil {
			br.violatef("op %d: snapshot: %v", i, serr)
			return r
		}
		r.Sum = st.checkVisible(i, "sync_for_cpu", sl, snap)

	case OpCPUWriteSync:
		sl := st.slot(op.Slot)
		if sl == nil || !sl.live || sl.dir == dmaapi.FromDevice || st.shared[sl.opIdx] > 1 ||
			op.Off < 0 || op.Len <= 0 || op.Off+op.Len > sl.buf.Size {
			return skip()
		}
		// A Bidirectional mapping may hold device writes the CPU hasn't
		// seen; sync them out first so copying and zero-copy backends
		// converge on the same buffer state before the CPU writes.
		if sl.dir == dmaapi.Bidirectional && sl.devWrote {
			if err := mc.mapper.SyncForCPU(p, sl.addr, sl.buf.Size, sl.dir); err != nil {
				r.Err = true
				br.violatef("op %d: pre-write sync_for_cpu failed: %v", i, err)
				return r
			}
		}
		payload := make([]byte, op.Len)
		for j := range payload {
			payload[j] = cpuPayload(i, j)
		}
		if err := mc.mem.Write(sl.buf.Addr+mem.Phys(op.Off), payload); err != nil {
			br.violatef("op %d: cpu write: %v", i, err)
			return r
		}
		copy(sl.osMirror[op.Off:], payload)
		copy(sl.devMirror[op.Off:], payload)
		if err := mc.mapper.SyncForDevice(p, sl.addr, sl.buf.Size, sl.dir); err != nil {
			r.Err = true
			br.violatef("op %d: sync_for_device failed: %v", i, err)
		}

	case OpProbeStale:
		sl := st.slot(op.Slot)
		if sl == nil || sl.live || !sl.hasFormer || st.overlapsLive(sl.fBuf) {
			return skip()
		}
		window, reachable, fault := st.probeStaleWrite(sl.fAddr, sl.fBuf)
		r.Window, r.Fault = window, fault
		br.Security.StaleProbes++
		// Eligible = the stale translation still resolved, so the probe's
		// bytes provably landed somewhere. On a backend whose window maps
		// the former IOVA straight at the OS buffer (deferred designs),
		// eligibility therefore forces observation — the positive check
		// can't be dodged by IOTLB evictions or already-flushed queues.
		if reachable {
			br.Security.StaleEligible++
		}
		if window {
			br.Security.StaleObserved++
		}

	case OpProbeSubPage:
		sl := st.slot(op.Slot)
		if sl == nil || !sl.live || sl.dir == dmaapi.FromDevice {
			return skip()
		}
		sib, ok := mc.sibs[sl.opIdx]
		if !ok || !mem.SamePage(sl.buf, sib) || sib.Addr == sl.buf.Addr {
			return skip()
		}
		// The sibling may sit before or after the buffer within the
		// shared page; the page-granular mapping covers it either way.
		// (Under copying backends the offset lands in recycled shadow or
		// bounce memory — or faults — never in the sibling.)
		delta := int64(sib.Addr) - int64(sl.buf.Addr)
		got := make([]byte, 8)
		res := mc.u.DMARead(fuzzDev, iommu.IOVA(int64(sl.addr)+delta), got)
		r.Fault = res.Fault != nil
		r.Leak = res.Fault == nil && bytes.Equal(got, secretFor(sl.opIdx))
		br.Security.SubPageEligible++
		if r.Leak {
			br.Security.SubPageObserved++
		}

	case OpProbeArbitrary:
		got := make([]byte, 8)
		res := mc.u.DMARead(fuzzDev, iommu.IOVA(mc.secretPage), got)
		r.Fault = res.Fault != nil
		r.Leak = res.Fault == nil && bytes.Equal(got, secretFor(-1))
		br.Security.ArbitraryProbes++
		if r.Leak {
			br.Security.ArbitraryLeaks++
		}

	case OpCoherentAlloc:
		if op.Slot < 0 || op.Slot >= NumCoherentSlots || st.coh[op.Slot].live ||
			op.Size <= 0 || op.Size > maxMapSize {
			return skip()
		}
		addr, buf, err := mc.mapper.AllocCoherent(p, op.Size)
		if err != nil {
			r.Err = true
			if benign {
				br.violatef("op %d: benign coherent alloc failed: %v", i, err)
			}
			return r
		}
		st.coh[op.Slot] = cohSlot{live: true, addr: addr, buf: buf}
		n := op.Size
		if n > 16 {
			n = 16
		}
		payload := make([]byte, n)
		for j := range payload {
			payload[j] = devPayload(i, j)
		}
		if res := mc.u.DMAWrite(fuzzDev, addr, payload); res.Fault != nil {
			br.violatef("op %d: coherent device write faulted: %v", i, res.Fault)
			return r
		}
		got := make([]byte, n)
		if err := mc.mem.Read(buf.Addr, got); err != nil || !bytes.Equal(got, payload) {
			br.violatef("op %d: coherent buffer not CPU-visible", i)
		}
		r.Sum = checksum(got)

	case OpCoherentFree:
		if op.Slot < 0 || op.Slot >= NumCoherentSlots || !st.coh[op.Slot].live {
			return skip()
		}
		c := st.coh[op.Slot]
		st.coh[op.Slot] = cohSlot{}
		if err := mc.mapper.FreeCoherent(p, c.addr, c.buf); err != nil {
			r.Err = true
			br.violatef("op %d: coherent free failed: %v", i, err)
		}

	case OpQuiesce:
		mc.mapper.Quiesce(p)

	default:
		return skip()
	}
	return r
}

func (st *execState) slot(i int) *execSlot {
	if i < 0 || i >= NumSlots {
		return nil
	}
	return &st.slots[i]
}

// checkVisible verifies the OS-visible buffer state after an ownership
// transfer to the CPU (unmap or sync_for_cpu) against the model, and
// returns the checksum of the DEFINED bytes: for FromDevice mappings only
// device-written extents are defined (copying backends legitimately fill
// the rest with recycled shadow contents), for ToDevice/Bidirectional the
// whole buffer is.
func (st *execState) checkVisible(i int, what string, sl *execSlot, snap []byte) string {
	switch sl.dir {
	case dmaapi.ToDevice:
		if !bytes.Equal(snap, sl.osMirror) {
			st.br.violatef("op %d: %s: ToDevice buffer modified", i, what)
		}
		return checksum(snap)
	case dmaapi.Bidirectional:
		if !bytes.Equal(snap, sl.devMirror) {
			st.br.violatef("op %d: %s: bidirectional buffer diverged from model", i, what)
		}
		return checksum(snap)
	default: // FromDevice
		var parts [][]byte
		for _, e := range sl.extents {
			if !bytes.Equal(snap[e.off:e.end], sl.devMirror[e.off:e.end]) {
				st.br.violatef("op %d: %s: device-written bytes [%d,%d) lost", i, what, e.off, e.end)
			}
			parts = append(parts, snap[e.off:e.end])
		}
		return checksum(parts...)
	}
}

// overlapsLive reports whether buf shares a physical page with any live
// mapping's buffer — in which case a stale probe of buf's pages could
// legitimately succeed (identity designs keep shared pages mapped) and
// the probe is skipped. The decision only depends on pre-allocated buffer
// addresses and slot states, so it is identical across backends.
func (st *execState) overlapsLive(buf mem.Buf) bool {
	lo, hi := buf.Addr.PFN(), (buf.Addr + mem.Phys(buf.Size-1)).PFN()
	for s := range st.slots {
		sl := &st.slots[s]
		if !sl.live {
			continue
		}
		slo, shi := sl.buf.Addr.PFN(), (sl.buf.Addr + mem.Phys(sl.buf.Size-1)).PFN()
		if lo <= shi && slo <= hi {
			return true
		}
	}
	return false
}

// probeStaleWrite performs a malicious device write through a formerly
// mapped IOVA and reports whether it reached the OS buffer (the
// vulnerability window), whether the stale translation still resolved at
// all (reachable — if it did, the bytes land SOMEWHERE, and a deferred
// backend must show the window), and whether it faulted. Whatever memory
// the write lands in — the OS buffer, a recycled shadow or bounce slot,
// a reused IOVA's new target — is snapshotted through the current
// translation first and restored afterwards, so probes never perturb
// state other backends would see differently.
func (st *execState) probeStaleWrite(addr iommu.IOVA, buf mem.Buf) (window, reachable, faulted bool) {
	mc := st.mc
	n := buf.Size
	if n > 16 {
		n = 16
	}
	// Snapshot the translation targets (pre-translating caches exactly
	// the IOTLB entries the write itself would).
	type saved struct {
		phys mem.Phys
		old  []byte
	}
	var saves []saved
	for done := 0; done < n; {
		at := addr + iommu.IOVA(done)
		phys, _, fault := mc.u.Translate(fuzzDev, at, iommu.PermWrite)
		if fault != nil {
			break
		}
		if done == 0 {
			reachable = true
		}
		seg := mem.PageSize - at.Offset()
		if seg > n-done {
			seg = n - done
		}
		old := make([]byte, seg)
		if err := mc.mem.Read(phys, old); err == nil {
			saves = append(saves, saved{phys, old})
		}
		done += seg
	}
	before, err := mc.mem.Snapshot(mem.Buf{Addr: buf.Addr, Size: n})
	if err != nil {
		return false, reachable, false
	}
	// Complementing every byte guarantees that any byte that lands in the
	// OS buffer changes it — the window can't hide behind a payload that
	// happens to equal the buffer's current content.
	payload := make([]byte, n)
	for j := range payload {
		payload[j] = ^before[j]
	}
	res := mc.u.DMAWrite(fuzzDev, addr, payload)
	after, _ := mc.mem.Snapshot(mem.Buf{Addr: buf.Addr, Size: n})
	window = !bytes.Equal(before, after)
	for _, s := range saves {
		_ = mc.mem.Write(s.phys, s.old)
	}
	return window, reachable, res.Fault != nil
}

// teardown unmaps every live mapping, frees every coherent allocation,
// and drains deferred work; former-mapping records stay behind for the
// final window-must-close probes.
func (st *execState) teardown(p *sim.Proc) {
	for s := range st.slots {
		sl := &st.slots[s]
		if !sl.live {
			continue
		}
		if err := st.mc.mapper.Unmap(p, sl.addr, sl.buf.Size, sl.dir); err != nil {
			st.br.violatef("teardown: unmap slot %d failed: %v", s, err)
		}
		st.shared[sl.opIdx]--
		*sl = execSlot{hasFormer: true, fAddr: sl.addr, fBuf: sl.buf}
	}
	for c := range st.coh {
		if !st.coh[c].live {
			continue
		}
		if err := st.mc.mapper.FreeCoherent(p, st.coh[c].addr, st.coh[c].buf); err != nil {
			st.br.violatef("teardown: coherent free slot %d failed: %v", c, err)
		}
		st.coh[c] = cohSlot{}
	}
	st.mc.mapper.Quiesce(p)
}
