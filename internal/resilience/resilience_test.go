package resilience

import (
	"testing"

	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

func rig(pol Policy) (*sim.Engine, *mem.Memory, *iommu.IOMMU, *Supervisor) {
	eng := sim.NewEngine()
	m := mem.New(1)
	u := iommu.New(eng, m, cycles.Default())
	return eng, m, u, Attach(u, eng, pol)
}

// fire feeds one fault for dev at virtual time `at` into the supervisor's
// token bucket, exactly as the IOMMU fault hook would.
func fire(s *Supervisor, dev iommu.DeviceID, at uint64) {
	s.Observe(iommu.Fault{Dev: dev, Addr: 0xdead000, Want: iommu.PermWrite, Reason: "test", At: at})
}

func TestBurstExhaustionQuarantines(t *testing.T) {
	eng, _, u, s := rig(Policy{FaultBurst: 4, RefillEvery: 1000, Cooldown: NoReadmit})
	var quarantinedAt uint64
	s.OnQuarantine = func(dev iommu.DeviceID, at uint64) { quarantinedAt = at }
	// 4 faults drain the bucket; the 5th finds it empty and quarantines.
	for i := 0; i < 5; i++ {
		fire(s, 7, uint64(i))
	}
	if s.State(7) != Quarantined || !u.Blocked(7) {
		t.Fatal("device should be quarantined and blocked")
	}
	st := s.Stats(7)
	if st.Quarantines != 1 || st.Faults != 5 || quarantinedAt != 4 {
		t.Errorf("stats = %+v, quarantinedAt = %d", st, quarantinedAt)
	}
	// Quarantined DMAs are rejected at the root: no fault record, no hook,
	// no token-bucket feedback.
	obsBefore, recBefore := s.FaultsObserved, u.FaultRing().Recorded()
	res := u.DMAWrite(7, 0x9000, []byte{1})
	if res.Fault == nil || res.Fault.Reason != "device quarantined" {
		t.Fatalf("blocked DMA fault = %+v", res.Fault)
	}
	if s.FaultsObserved != obsBefore || u.FaultRing().Recorded() != recBefore {
		t.Error("blocked DMA must not feed the token bucket or the ring")
	}
	if s.QuarantinedDevices() != 1 {
		t.Errorf("QuarantinedDevices = %d", s.QuarantinedDevices())
	}
	// NoReadmit: nothing scheduled, quarantine is permanent.
	eng.Run(1 << 40)
	eng.Stop()
	if s.State(7) != Quarantined {
		t.Error("NoReadmit quarantine must be permanent")
	}
}

func TestRefillToleratesBackgroundRate(t *testing.T) {
	_, _, _, s := rig(Policy{FaultBurst: 2, RefillEvery: 1000, Cooldown: NoReadmit})
	// One fault per refill interval: the bucket never drains.
	for i := 0; i < 50; i++ {
		fire(s, 3, uint64(i)*1000)
	}
	if s.State(3) != Healthy {
		t.Fatal("sustained rate at 1/RefillEvery should stay healthy")
	}
	// Refill is capped at the burst depth: a long quiet period does not
	// bank unlimited tokens.
	fire(s, 3, 1_000_000)
	fire(s, 3, 1_000_000)
	fire(s, 3, 1_000_000)
	if s.State(3) != Quarantined {
		t.Error("burst after idle must still be bounded by FaultBurst")
	}
}

func TestReadmitAfterCooldown(t *testing.T) {
	eng, _, u, s := rig(Policy{FaultBurst: 2, RefillEvery: 1 << 30, Cooldown: 5000, MaxReadmits: -1})
	var readmittedAt uint64
	s.OnReadmit = func(dev iommu.DeviceID, at uint64) { readmittedAt = at }
	for i := 0; i < 3; i++ {
		fire(s, 9, 100)
	}
	if s.State(9) != Quarantined {
		t.Fatal("not quarantined")
	}
	eng.Run(1 << 20)
	if s.State(9) != Healthy || u.Blocked(9) {
		t.Fatal("cool-down should readmit and unblock")
	}
	if readmittedAt != 5100 {
		t.Errorf("readmitted at %d, want 5100", readmittedAt)
	}
	st := s.Stats(9)
	if st.Readmits != 1 || st.ReadmittedAt != 5100 {
		t.Errorf("stats = %+v", st)
	}
	// Readmission resets the bucket: the device has its full burst again.
	fire(s, 9, 5101)
	fire(s, 9, 5102)
	if s.State(9) != Healthy {
		t.Error("bucket not reset on readmit")
	}
	eng.Stop()
}

func TestMaxReadmitsBoundsFlapping(t *testing.T) {
	eng, _, _, s := rig(Policy{FaultBurst: 1, RefillEvery: 1 << 40, Cooldown: 100, MaxReadmits: 2})
	at := uint64(1)
	trip := func() {
		fire(s, 5, at)
		fire(s, 5, at+1)
		at += 2
	}
	trip() // quarantine #1
	eng.Run(at + 200)
	at += 202
	trip() // quarantine #2
	eng.Run(at + 200)
	at += 202
	if s.Stats(5).Readmits != 2 {
		t.Fatalf("readmits = %d, want 2", s.Stats(5).Readmits)
	}
	trip() // quarantine #3: readmit budget spent, permanent now
	eng.Run(1 << 40)
	eng.Stop()
	if s.State(5) != Quarantined {
		t.Fatal("third quarantine should be permanent after MaxReadmits=2")
	}
	if s.Stats(5).Quarantines != 3 || s.Stats(5).Readmits != 2 {
		t.Errorf("stats = %+v", s.Stats(5))
	}
}

func TestTeardownMappingsWipesDomain(t *testing.T) {
	_, m, u, s := rig(Policy{FaultBurst: 1, RefillEvery: 1 << 40, Cooldown: NoReadmit, TeardownMappings: true})
	phys, _ := m.AllocPages(0, 2)
	if err := u.Map(6, 0x8000, phys, 2*mem.PageSize, iommu.PermRW); err != nil {
		t.Fatal(err)
	}
	fire(s, 6, 1)
	fire(s, 6, 2)
	if s.State(6) != Quarantined {
		t.Fatal("not quarantined")
	}
	if s.WipedPages != 2 {
		t.Errorf("WipedPages = %d, want 2", s.WipedPages)
	}
	// Even if the block bit were cleared, nothing remains mapped.
	u.Unblock(6)
	if _, _, f := u.Translate(6, 0x8000, iommu.PermRead); f == nil {
		t.Error("mappings should be gone after teardown")
	}
	// The owner's teardown of the wiped range is tolerated (wipe debt).
	if err := u.Unmap(6, 0x8000, 2*mem.PageSize); err != nil {
		t.Errorf("unmap of wiped range: %v", err)
	}
}

func TestAttachChainsExistingFaultHook(t *testing.T) {
	eng := sim.NewEngine()
	m := mem.New(1)
	u := iommu.New(eng, m, cycles.Default())
	prior := 0
	u.FaultHook = func(iommu.Fault) { prior++ }
	s := Attach(u, eng, Policy{FaultBurst: 100})
	// A real fault (unmapped IOVA) must reach both the pre-existing hook
	// and the supervisor.
	if res := u.DMAWrite(2, 0x7000, []byte{1}); res.Fault == nil {
		t.Fatal("expected a fault")
	}
	if prior != 1 || s.FaultsObserved != 1 {
		t.Fatalf("prior hook calls = %d, supervisor observed = %d; both should see the fault", prior, s.FaultsObserved)
	}
}

func TestPolicyNormalization(t *testing.T) {
	_, _, _, s := rig(Policy{})
	if s.Policy() != DefaultPolicy() {
		t.Errorf("zero policy should normalize to default: got %+v", s.Policy())
	}
	_, _, _, s2 := rig(Policy{Cooldown: NoReadmit, MaxReadmits: 3})
	if s2.Policy().Cooldown != NoReadmit || s2.Policy().MaxReadmits != 3 {
		t.Errorf("explicit fields must survive normalization: %+v", s2.Policy())
	}
}
