// Package resilience implements the per-device fault-domain policy engine:
// token-bucket fault-rate tracking over the IOMMU's fault stream, device
// quarantine when a device's fault rate exceeds its budget (its DMAs are
// then rejected cheaply at the root, and optionally its whole domain is
// torn down), and reset-and-readmission after a cool-down. The goal is the
// paper's threat model taken to its operational conclusion: a hostile or
// broken device must not be able to spend other devices' cycles — not on
// page walks, not on fault recording, not on host-side handling.
//
// The engine is deliberately small and mechanical: it consumes
// iommu.FaultHook, keeps one integer token bucket per device in virtual
// time, and drives iommu.Block/Unblock (+ WipeDomain when configured).
// Everything above it — NIC descriptor handling, netstack buffer posting —
// reacts to the quarantine through IOMMU.Blocked, so the containment cost
// is a map lookup, not a policy consultation.
package resilience

import (
	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/sim"
)

// State is a device's fault-domain state.
type State int

const (
	// Healthy devices translate normally.
	Healthy State = iota
	// Quarantined devices have their DMAs rejected at the root.
	Quarantined
)

func (s State) String() string {
	if s == Quarantined {
		return "quarantined"
	}
	return "healthy"
}

// Policy parameterizes the fault-domain engine. The zero value of any
// field is replaced by its DefaultPolicy counterpart at Attach time, so a
// partially specified policy is safe.
type Policy struct {
	// FaultBurst is the token-bucket depth: how many faults a device may
	// emit back-to-back before quarantine. Real devices do fault
	// occasionally (probe reads, races at teardown); the burst absorbs
	// that background rate.
	FaultBurst uint64
	// RefillEvery is the bucket refill interval in cycles: one token is
	// restored per interval, so the sustained tolerated fault rate is
	// 1/RefillEvery.
	RefillEvery uint64
	// Cooldown is how long a quarantined device stays blocked before
	// readmission, in cycles. Zero at Attach time means the default;
	// use NoReadmit for permanent quarantine.
	Cooldown uint64
	// MaxReadmits bounds how many times a device may be readmitted
	// (after that, quarantine is permanent). Negative means unlimited;
	// zero at Attach time means the default (unlimited).
	MaxReadmits int
	// TeardownMappings additionally wipes the device's page tables on
	// quarantine (iommu.WipeDomain): nothing remains reachable even if
	// the block bit were cleared. Mapping owners' later unmaps of wiped
	// pages are tolerated via the domain's wipe debt. Off by default:
	// strategies with permanent mappings (the copy strategy's shadow
	// pool) quarantine without losing their pool.
	TeardownMappings bool
}

// NoReadmit is a Cooldown value meaning "never readmit".
const NoReadmit = ^uint64(0)

// DefaultPolicy tolerates a modest background fault rate (64-fault burst,
// 100k faults/s sustained at the default clock) and readmits after 5 ms.
func DefaultPolicy() Policy {
	return Policy{
		FaultBurst:  64,
		RefillEvery: cycles.FromMicros(10),
		Cooldown:    cycles.FromMillis(5),
		MaxReadmits: -1,
	}
}

// DeviceStats is the per-device view of the engine.
type DeviceStats struct {
	State         State
	Faults        uint64 // faults observed (quarantined-period rejections excluded)
	Quarantines   uint64
	Readmits      uint64
	QuarantinedAt uint64 // virtual time of the most recent quarantine
	ReadmittedAt  uint64 // virtual time of the most recent readmission
}

type devState struct {
	state      State
	tokens     uint64
	lastRefill uint64
	stats      DeviceStats
}

// Supervisor is the attached policy engine. The simulation is
// single-threaded, so no locking is needed; callbacks run in engine or
// proc context at the fault's virtual time.
type Supervisor struct {
	eng  *sim.Engine
	u    *iommu.IOMMU
	pol  Policy
	devs map[iommu.DeviceID]*devState

	// OnQuarantine/OnReadmit, when set, are called after the transition
	// is applied (drivers use them to pause sources, log, etc.).
	OnQuarantine func(dev iommu.DeviceID, at uint64)
	OnReadmit    func(dev iommu.DeviceID, at uint64)

	// Aggregate stats (published as resilience.* metrics).
	FaultsObserved uint64
	Quarantines    uint64
	Readmits       uint64
	WipedPages     uint64
}

// Attach normalizes the policy, chains the supervisor onto the IOMMU's
// FaultHook (preserving any existing hook), and returns it.
func Attach(u *iommu.IOMMU, eng *sim.Engine, pol Policy) *Supervisor {
	def := DefaultPolicy()
	if pol.FaultBurst == 0 {
		pol.FaultBurst = def.FaultBurst
	}
	if pol.RefillEvery == 0 {
		pol.RefillEvery = def.RefillEvery
	}
	if pol.Cooldown == 0 {
		pol.Cooldown = def.Cooldown
	}
	if pol.MaxReadmits == 0 {
		pol.MaxReadmits = def.MaxReadmits
	}
	s := &Supervisor{
		eng:  eng,
		u:    u,
		pol:  pol,
		devs: make(map[iommu.DeviceID]*devState),
	}
	prev := u.FaultHook
	u.FaultHook = func(f iommu.Fault) {
		if prev != nil {
			prev(f)
		}
		s.Observe(f)
	}
	return s
}

// Policy returns the normalized policy in effect.
func (s *Supervisor) Policy() Policy { return s.pol }

func (s *Supervisor) dev(id iommu.DeviceID) *devState {
	d, ok := s.devs[id]
	if !ok {
		d = &devState{tokens: s.pol.FaultBurst}
		s.devs[id] = d
	}
	return d
}

// Observe feeds one fault into the device's token bucket; bucket
// exhaustion quarantines the device. Quarantined devices' DMAs are
// rejected at the root without faulting, so there is no feedback loop —
// Observe simply never sees them.
func (s *Supervisor) Observe(f iommu.Fault) {
	s.FaultsObserved++
	d := s.dev(f.Dev)
	d.stats.Faults++
	if d.state == Quarantined {
		return
	}
	if f.At > d.lastRefill {
		refill := (f.At - d.lastRefill) / s.pol.RefillEvery
		d.lastRefill += refill * s.pol.RefillEvery
		d.tokens += refill
		if d.tokens > s.pol.FaultBurst {
			d.tokens = s.pol.FaultBurst
		}
	}
	if d.tokens == 0 {
		s.quarantine(f.Dev, d, f.At)
		return
	}
	d.tokens--
}

func (s *Supervisor) quarantine(dev iommu.DeviceID, d *devState, at uint64) {
	d.state = Quarantined
	d.stats.Quarantines++
	d.stats.QuarantinedAt = at
	s.Quarantines++
	s.u.Block(dev)
	if s.pol.TeardownMappings {
		s.WipedPages += s.u.WipeDomain(dev)
	}
	if s.OnQuarantine != nil {
		s.OnQuarantine(dev, at)
	}
	if s.pol.Cooldown != NoReadmit &&
		(s.pol.MaxReadmits < 0 || d.stats.Readmits < uint64(s.pol.MaxReadmits)) {
		s.eng.Schedule(at+s.pol.Cooldown, func(when uint64) { s.readmit(dev, when) })
	}
}

// readmit resets the device's bucket and lifts the block.
func (s *Supervisor) readmit(dev iommu.DeviceID, at uint64) {
	d := s.dev(dev)
	if d.state != Quarantined {
		return
	}
	d.state = Healthy
	d.tokens = s.pol.FaultBurst
	d.lastRefill = at
	d.stats.Readmits++
	d.stats.ReadmittedAt = at
	s.Readmits++
	s.u.Unblock(dev)
	if s.OnReadmit != nil {
		s.OnReadmit(dev, at)
	}
}

// State returns the device's current fault-domain state.
func (s *Supervisor) State(dev iommu.DeviceID) State {
	if d, ok := s.devs[dev]; ok {
		return d.state
	}
	return Healthy
}

// Stats returns a snapshot of the device's counters.
func (s *Supervisor) Stats(dev iommu.DeviceID) DeviceStats {
	if d, ok := s.devs[dev]; ok {
		st := d.stats
		st.State = d.state
		return st
	}
	return DeviceStats{}
}

// QuarantinedDevices returns how many devices are currently quarantined.
func (s *Supervisor) QuarantinedDevices() int {
	n := 0
	for _, d := range s.devs {
		if d.state == Quarantined {
			n++
		}
	}
	return n
}
