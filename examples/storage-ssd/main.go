// Storage demo: the huge-buffer hybrid path (paper §5.5).
//
// An NVMe-class SSD moves data in large, often misaligned buffers (here
// 256 KiB at a 100-byte offset). Copying such buffers would cost far more
// than an IOTLB invalidation, so DMA shadowing switches strategy: only the
// sub-page head and tail are shadowed (copied); the page-aligned middle is
// zero-copy mapped and strictly invalidated on unmap — affordable because
// huge-buffer DMA rates are low (the paper cites Intel SSDs at <= 850K
// IOPS vs 1.7M packets/s for the NIC).
//
// Run with:  go run ./examples/storage-ssd
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

const (
	ssdDev  = iommu.DeviceID(7)
	ioBytes = 256 * 1024
	numIOs  = 64
)

func main() {
	eng := sim.NewEngine()
	m := mem.New(1)
	costs := cycles.Default()
	u := iommu.New(eng, m, costs)
	env := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: costs, Dev: ssdDev, Cores: 1}
	mapper, err := core.NewShadowMapper(env)
	if err != nil {
		log.Fatal(err)
	}

	eng.Spawn("blocklayer", 0, 0, func(p *sim.Proc) {
		// A misaligned 256 KiB read buffer: head and tail share pages
		// with other kernel data.
		region, err := m.AllocPages(0, ioBytes/mem.PageSize+2)
		check(err)
		buf := mem.Buf{Addr: region + 100, Size: ioBytes}
		check(m.Fill(mem.Buf{Addr: region, Size: 100}, 0x5A)) // co-located bytes

		var start uint64
		for io := 0; io < numIOs; io++ {
			if io == 1 {
				start = p.Now() // skip first-IO warmup in the average
			}
			// The SSD writes a block into the buffer (a read I/O).
			addr, err := mapper.Map(p, buf, dmaapi.FromDevice)
			check(err)
			block := make([]byte, ioBytes)
			for i := range block {
				block[i] = byte(io + i)
			}
			if res := u.DMAWrite(ssdDev, addr, block); res.Fault != nil {
				log.Fatalf("SSD DMA fault: %v", res.Fault)
			}
			// Co-located bytes in front of the buffer stay untouchable:
			// that page area is backed by the head shadow page.
			head := make([]byte, 100)
			if res := u.DMARead(ssdDev, addr-100, head); res.Fault == nil {
				if bytes.Contains(head, []byte{0x5A, 0x5A}) {
					log.Fatal("co-located kernel bytes leaked through the hybrid head!")
				}
			}
			check(mapper.Unmap(p, addr, buf.Size, dmaapi.FromDevice))
			got, err := m.Snapshot(buf)
			check(err)
			if !bytes.Equal(got, block) {
				log.Fatalf("I/O %d: data corrupt after unmap", io)
			}
		}
		elapsed := p.Now() - start
		st := mapper.Stats()
		perIO := cycles.Micros(elapsed) / float64(numIOs-1)
		fullCopy := 2 * cycles.Micros(costs.Memcpy(ioBytes)+costs.Pollution(ioBytes))
		fmt.Printf("%d x %d KiB misaligned SSD reads via the hybrid path\n", numIOs, ioBytes/1024)
		fmt.Printf("  hybrid maps:             %d (of %d total maps)\n", st.HybridMaps, st.Maps)
		fmt.Printf("  bytes copied per I/O:    %d (head+tail only, of %d)\n",
			st.BytesCopied/uint64(st.Maps), ioBytes)
		fmt.Printf("  CPU per I/O:             %.2f us\n", perIO)
		fmt.Printf("  full-copy alternative:   %.2f us of memcpy alone per I/O\n", fullCopy)
		fmt.Printf("  IOTLB invalidations:     %d (one per unmap -- affordable at SSD rates)\n",
			u.Queue.Submitted)
		fmt.Printf("  at 850K IOPS this spends %.1f%% of a core on invalidation vs %.1f%% copying\n",
			100*850_000*cycles.Micros(costs.IOTLBInvalidateHW)/1e6,
			100*850_000*fullCopy/1e6)
	})
	eng.Run(1 << 40)
	eng.Stop()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
