// Quickstart: assemble a simulated machine, protect a device with DMA
// shadowing, and watch the copy-based DMA API at work.
//
// Run with:  go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

func main() {
	// 1. A machine: engine (virtual time), physical memory (2 NUMA
	//    domains), an IOMMU, and a slab allocator.
	eng := sim.NewEngine()
	m := mem.New(2)
	costs := cycles.Default()
	u := iommu.New(eng, m, costs)
	k := mem.NewKmalloc(m, nil)
	env := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: costs, Dev: 1, Cores: 1}

	// 2. The paper's contribution: a DMA-shadowing mapper. It implements
	//    the exact same dmaapi.Mapper interface as the zero-copy
	//    baselines — drivers cannot tell the difference (transparency).
	mapper, err := core.NewShadowMapper(env)
	if err != nil {
		log.Fatal(err)
	}

	eng.Spawn("driver", 0, 0, func(p *sim.Proc) {
		// 3. A driver prepares a transmit buffer. kmalloc co-locates it
		//    with other kernel data on the same page — which is exactly
		//    why page-granular IOMMU protection is not enough.
		buf, err := k.Alloc(0, 1500)
		check(err)
		secret, err := k.Alloc(0, 1500) // same slab class => same page
		check(err)
		payload := []byte("a packet about to be transmitted")
		check(m.Write(buf.Addr, payload))
		check(m.Write(secret.Addr, []byte("co-located kernel secret")))
		fmt.Printf("buffer %#x and secret %#x share a page: %v\n",
			uint64(buf.Addr), uint64(secret.Addr), mem.SamePage(buf, secret))

		// 4. dma_map: the mapper acquires a permanently-mapped shadow
		//    buffer, copies the packet in, and returns the shadow IOVA.
		addr, err := mapper.Map(p, buf, dmaapi.ToDevice)
		check(err)
		fmt.Printf("dma_map -> IOVA %#x (bit 47 set: shadow-encoded)\n", uint64(addr))

		// 5. The device DMAs from that IOVA and sees the packet...
		got := make([]byte, len(payload))
		res := u.DMARead(1, addr, got)
		fmt.Printf("device reads: %q (fault: %v)\n", got, res.Fault != nil)

		// ...but the OS buffer itself was never mapped: even knowing its
		// physical address, the device cannot touch it or the secret.
		if res := u.DMARead(1, iommu.IOVA(secret.Addr), got); res.Fault != nil {
			fmt.Println("device read of co-located secret: BLOCKED (byte granularity)")
		}

		// 6. dma_unmap releases the shadow buffer. No IOTLB invalidation
		//    happens — copying made it unnecessary.
		check(mapper.Unmap(p, addr, buf.Size, dmaapi.ToDevice))
		fmt.Printf("after unmap: invalidations submitted = %d (always zero for copy)\n",
			u.Queue.Submitted)

		// 7. The shadow pool API itself (paper Table 2) is also public:
		iova2, err := mapper.Pool().AcquireShadow(p, buf, 1500, iommu.PermWrite)
		check(err)
		osBuf, err := mapper.Pool().FindShadow(p, iova2)
		check(err)
		fmt.Printf("pool: acquire_shadow -> %#x, find_shadow -> OS buffer %#x\n",
			uint64(iova2), uint64(osBuf.Addr))
		check(mapper.Pool().ReleaseShadow(p, iova2))

		st := mapper.Stats()
		fmt.Printf("stats: %d maps, %d bytes copied, pool footprint %d KB, %.2fus of CPU used\n",
			st.Maps, st.BytesCopied, st.ShadowPoolBytes/1024, cycles.Micros(p.Busy()))
	})
	eng.Run(1 << 32)
	eng.Stop()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
