// Malicious NIC demo: the firewall TOCTOU attack of the paper's §3/§4.
//
// A compromised NIC delivers innocent-looking packets, then — after the OS
// has unmapped each buffer and the firewall has approved its contents —
// replays writes to the stale IOVAs, swapping the payload for a malicious
// one before the application consumes it. Under deferred protection the
// replay lands (the IOTLB still holds the translation); under DMA
// shadowing the replay can only hit a quarantined shadow buffer.
//
// Run with:  go run ./examples/malicious-nic
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/bench"
	"repro/internal/cycles"
	"repro/internal/iommu"
	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/sim"
)

var evil = []byte("EVIL")

func main() {
	fmt.Println("Firewall TOCTOU attack by a compromised NIC")
	fmt.Println("(payloads swapped after dma_unmap + firewall approval)")
	fmt.Println()
	fmt.Println("  caught   = tampering landed BEFORE the firewall check (detectable)")
	fmt.Println("  breaches = tampering landed AFTER the check: the app consumed it")
	fmt.Println()
	for _, sys := range []string{bench.SysIdentityDefer, bench.SysLinuxDefer, bench.SysIdentityStrict, bench.SysCopy} {
		breaches, caught, delivered := run(sys)
		verdict := "SAFE: application never saw a tampered packet"
		if breaches > 0 {
			verdict = "COMPROMISED: tampered packets reached the application"
		}
		fmt.Printf("%-10s delivered %5d packets, firewall caught %3d, breaches %3d -> %s\n",
			sys, delivered, caught, breaches, verdict)
	}
}

func run(system string) (breaches, caught int, delivered uint64) {
	cfg := bench.DefaultConfig(system, bench.RX, 1, 1500)
	cfg.WindowMs = 2
	mach, err := bench.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	drv := mach.Driver

	// The firewall approves only packets without the EVIL marker. A
	// tampering attempt BEFORE the check is caught here; the attack's
	// point is to tamper AFTER it.
	drv.Firewall = func(p *sim.Proc, pkt []byte) bool {
		if bytes.Contains(pkt, evil) {
			return false
		}
		return true
	}
	// The application: any EVIL content that gets here is a breach.
	drv.OnDeliver = func(p *sim.Proc, pkt []byte) {
		if bytes.Contains(pkt, evil) {
			breaches++
		}
	}

	// The compromised NIC remembers every IOVA it is given and sprays
	// replayed writes at it shortly after delivering the real packet —
	// right in the window between dma_unmap and consumption.
	mach.NIC.RxDMAHook = func(q int, addr iommu.IOVA, n int) {
		now := mach.Eng.Now()
		for _, delay := range []float64{2, 4, 6, 8} {
			a := addr
			mach.Eng.Schedule(now+cycles.FromMicros(delay), func(uint64) {
				mach.IOMMU.DMAWrite(mach.Env.Dev, a+8, evil)
			})
		}
	}

	var st netstack.RxStats
	mach.Eng.Spawn("rx", 0, 0, func(p *sim.Proc) {
		if err := drv.SetupQueue(p, 0); err != nil {
			log.Fatal(err)
		}
		_ = drv.RunRxStream(p, 0, 1500, &st)
	})
	src := nic.NewSource(mach.Eng, mach.NIC.Queue(0), cfg.Costs, 1500, 1500, true)
	src.Start(0)
	mach.Eng.Run(cycles.FromMillis(cfg.WindowMs))
	mach.Eng.Stop()
	return breaches, int(drv.FirewallDrops), st.Frames
}
