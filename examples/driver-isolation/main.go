// Driver isolation demo: per-device shadow pools as an isolation boundary.
//
// The paper notes (§3) that DMA shadowing also fits systems that isolate
// drivers as untrusted components: the kernel only ever exposes shadow
// buffers to a driver/device pair, so even a colluding driver+device cannot
// reach kernel memory, and two devices cannot reach each other's shadow
// pools (each device has its own pool and its own IOMMU domain, §5.3).
//
// Run with:  go run ./examples/driver-isolation
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cycles"
	"repro/internal/dmaapi"
	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
)

func main() {
	eng := sim.NewEngine()
	m := mem.New(1)
	costs := cycles.Default()
	u := iommu.New(eng, m, costs)
	k := mem.NewKmalloc(m, nil)

	newDev := func(dev iommu.DeviceID) *core.ShadowMapper {
		env := &dmaapi.Env{Eng: eng, Mem: m, IOMMU: u, Costs: costs, Dev: dev, Cores: 1}
		s, err := core.NewShadowMapper(env)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	nicMapper := newDev(1) // an untrusted NIC + its driver
	ssdMapper := newDev(2) // an untrusted SSD + its driver

	eng.Spawn("kernel", 0, 0, func(p *sim.Proc) {
		// The kernel holds sensitive state...
		secret, _ := k.Alloc(0, 256)
		check(m.Write(secret.Addr, []byte("kernel keyring")))

		// ...and grants each driver a DMA buffer through its own mapper.
		nicBuf, _ := k.Alloc(0, 1500)
		check(m.Write(nicBuf.Addr, []byte("packet for the NIC")))
		nicAddr, err := nicMapper.Map(p, nicBuf, dmaapi.ToDevice)
		check(err)
		ssdBuf, _ := k.Alloc(0, 4096)
		check(m.Write(ssdBuf.Addr, []byte("block for the SSD")))
		ssdAddr, err := ssdMapper.Map(p, ssdBuf, dmaapi.ToDevice)
		check(err)

		probe := make([]byte, 16)
		report := func(what string, res iommu.DMAResult, leaked []byte) {
			verdict := "BLOCKED (fault)"
			if res.Fault == nil {
				if leaked != nil && string(probe) == string(leaked[:16]) {
					verdict = fmt.Sprintf("LEAKED %q", probe)
				} else {
					verdict = fmt.Sprintf("contained: read %q", probe)
				}
			}
			fmt.Printf("  %-44s %s\n", what, verdict)
		}
		fmt.Println("each device can reach ONLY its own shadow buffers:")
		nicData := []byte("packet for the NIC")
		ssdData := []byte("block for the SSD\x00")
		report("NIC reads its own mapping", u.DMARead(1, nicAddr, probe), nil)
		report("SSD reads its own mapping", u.DMARead(2, ssdAddr, probe), nil)
		// IOVA values are per-device: the same number translates through
		// each device's OWN domain, so probing the other device's IOVA
		// can only ever land in the prober's own shadow pool.
		report("NIC probes the SSD's IOVA", u.DMARead(1, ssdAddr, probe), ssdData)
		report("SSD probes the NIC's IOVA", u.DMARead(2, nicAddr, probe), nicData)
		report("NIC probes kernel secret by phys addr", u.DMARead(1, iommu.IOVA(secret.Addr), probe), nil)
		report("SSD probes kernel secret by phys addr", u.DMARead(2, iommu.IOVA(secret.Addr), probe), nil)

		check(nicMapper.Unmap(p, nicAddr, nicBuf.Size, dmaapi.ToDevice))
		check(ssdMapper.Unmap(p, ssdAddr, ssdBuf.Size, dmaapi.ToDevice))
		fmt.Printf("pool footprints: nic %d KB, ssd %d KB (fully independent)\n",
			nicMapper.Stats().ShadowPoolBytes/1024, ssdMapper.Stats().ShadowPoolBytes/1024)
	})
	eng.Run(1 << 32)
	eng.Stop()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
